#include "geom/polygon.h"

#include <cmath>
#include <limits>

#include "geom/algorithms.h"
#include "geom/polyline.h"

namespace paradise::geom {

Polygon::Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {
  for (const Point& p : ring_) mbr_.ExpandToInclude(p);
}

double Polygon::Area() const {
  if (ring_.size() < 3) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    sum += a.x * b.y - b.x * a.y;
  }
  return std::fabs(sum) / 2.0;
}

Point Polygon::Centroid() const {
  if (ring_.empty()) return Point{};
  if (ring_.size() < 3) return ring_[0];
  double cx = 0.0, cy = 0.0, a = 0.0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& p = ring_[i];
    const Point& q = ring_[(i + 1) % ring_.size()];
    double cross = p.x * q.y - q.x * p.y;
    a += cross;
    cx += (p.x + q.x) * cross;
    cy += (p.y + q.y) * cross;
  }
  if (std::fabs(a) < 1e-12) return mbr_.Center();  // degenerate ring
  a /= 2.0;
  return Point{cx / (6.0 * a), cy / (6.0 * a)};
}

bool Polygon::Contains(const Point& p) const {
  if (ring_.size() < 3 || !mbr_.Contains(p)) return false;
  bool inside = false;
  for (size_t i = 0, j = ring_.size() - 1; i < ring_.size(); j = i++) {
    const Point& a = ring_[i];
    const Point& b = ring_[j];
    if (OnSegment(p, a, b)) return true;  // boundary counts as inside
    if ((a.y > p.y) != (b.y > p.y)) {
      double x_cross = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_cross) inside = !inside;
    }
  }
  return inside;
}

bool Polygon::Intersects(const Polygon& other) const {
  if (!mbr_.Intersects(other.mbr_)) return false;
  if (ring_.empty() || other.ring_.empty()) return false;
  // Any edge crossing?
  size_t n = ring_.size();
  size_t m = other.ring_.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % n];
    Box seg_box;
    seg_box.ExpandToInclude(a);
    seg_box.ExpandToInclude(b);
    if (!seg_box.Intersects(other.mbr_)) continue;
    for (size_t j = 0; j < m; ++j) {
      if (SegmentsIntersect(a, b, other.ring_[j], other.ring_[(j + 1) % m])) {
        return true;
      }
    }
  }
  // No edge crossing: one may fully contain the other.
  return Contains(other.ring_[0]) || other.Contains(ring_[0]);
}

bool Polygon::Intersects(const Polyline& line) const {
  if (!mbr_.Intersects(line.Mbr())) return false;
  const std::vector<Point>& pts = line.points();
  if (pts.empty() || ring_.empty()) return false;
  size_t n = ring_.size();
  for (size_t i = 1; i < pts.size(); ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (SegmentsIntersect(pts[i - 1], pts[i], ring_[j],
                            ring_[(j + 1) % n])) {
        return true;
      }
    }
  }
  // No boundary crossing: the whole chain may be inside the polygon.
  return Contains(pts[0]);
}

bool Polygon::IntersectsBox(const Box& box) const {
  if (!mbr_.Intersects(box)) return false;
  if (ring_.empty()) return false;
  // Any vertex inside the box, or any edge crossing the box?
  size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    if (SegmentIntersectsBox(ring_[i], ring_[(i + 1) % n], box)) return true;
  }
  // Box may be entirely inside the polygon.
  return Contains(box.Center());
}

double Polygon::DistanceTo(const Point& p) const {
  if (ring_.empty()) return std::numeric_limits<double>::infinity();
  if (Contains(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    best =
        std::min(best, PointSegmentDistance(p, ring_[i], ring_[(i + 1) % n]));
  }
  return best;
}

namespace {

// One Sutherland-Hodgman clip pass against the half-plane where
// `Inside(p)` holds; `Cross(a, b)` returns the edge/boundary intersection.
template <typename InsideFn, typename CrossFn>
std::vector<Point> ClipAgainst(const std::vector<Point>& in, InsideFn inside,
                               CrossFn cross) {
  std::vector<Point> out;
  if (in.empty()) return out;
  out.reserve(in.size() + 4);
  for (size_t i = 0; i < in.size(); ++i) {
    const Point& cur = in[i];
    const Point& prev = in[(i + in.size() - 1) % in.size()];
    bool cur_in = inside(cur);
    bool prev_in = inside(prev);
    if (cur_in) {
      if (!prev_in) out.push_back(cross(prev, cur));
      out.push_back(cur);
    } else if (prev_in) {
      out.push_back(cross(prev, cur));
    }
  }
  return out;
}

}  // namespace

Polygon Polygon::ClipToBox(const Box& box) const {
  if (ring_.size() < 3 || box.IsEmpty()) return Polygon();
  if (box.Contains(mbr_)) return *this;
  if (!mbr_.Intersects(box)) return Polygon();

  std::vector<Point> pts = ring_;
  // Left.
  pts = ClipAgainst(
      pts, [&](const Point& p) { return p.x >= box.xmin; },
      [&](const Point& a, const Point& b) {
        double t = (box.xmin - a.x) / (b.x - a.x);
        return Point{box.xmin, a.y + t * (b.y - a.y)};
      });
  // Right.
  pts = ClipAgainst(
      pts, [&](const Point& p) { return p.x <= box.xmax; },
      [&](const Point& a, const Point& b) {
        double t = (box.xmax - a.x) / (b.x - a.x);
        return Point{box.xmax, a.y + t * (b.y - a.y)};
      });
  // Bottom.
  pts = ClipAgainst(
      pts, [&](const Point& p) { return p.y >= box.ymin; },
      [&](const Point& a, const Point& b) {
        double t = (box.ymin - a.y) / (b.y - a.y);
        return Point{a.x + t * (b.x - a.x), box.ymin};
      });
  // Top.
  pts = ClipAgainst(
      pts, [&](const Point& p) { return p.y <= box.ymax; },
      [&](const Point& a, const Point& b) {
        double t = (box.ymax - a.y) / (b.y - a.y);
        return Point{a.x + t * (b.x - a.x), box.ymax};
      });
  if (pts.size() < 3) return Polygon();
  return Polygon(std::move(pts));
}

void Polygon::Serialize(ByteWriter* w) const {
  w->PutU32(static_cast<uint32_t>(ring_.size()));
  for (const Point& p : ring_) {
    w->PutDouble(p.x);
    w->PutDouble(p.y);
  }
}

Polygon Polygon::Deserialize(ByteReader* r) {
  uint32_t n = r->GetU32();
  std::vector<Point> pts;
  pts.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    double x = r->GetDouble();
    double y = r->GetDouble();
    pts.push_back(Point{x, y});
  }
  return Polygon(std::move(pts));
}

std::string Polygon::ToString() const {
  std::string out = "POLYGON(";
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (i > 0) out += ", ";
    out += ring_[i].ToString();
  }
  out += ")";
  return out;
}

double SwissCheesePolygon::Area() const {
  double a = outer_.Area();
  for (const Polygon& h : holes_) a -= h.Area();
  return a;
}

bool SwissCheesePolygon::Contains(const Point& p) const {
  if (!outer_.Contains(p)) return false;
  for (const Polygon& h : holes_) {
    if (h.Contains(p)) return false;
  }
  return true;
}

void SwissCheesePolygon::Serialize(ByteWriter* w) const {
  outer_.Serialize(w);
  w->PutU32(static_cast<uint32_t>(holes_.size()));
  for (const Polygon& h : holes_) h.Serialize(w);
}

SwissCheesePolygon SwissCheesePolygon::Deserialize(ByteReader* r) {
  Polygon outer = Polygon::Deserialize(r);
  uint32_t n = r->GetU32();
  std::vector<Polygon> holes;
  holes.reserve(n);
  for (uint32_t i = 0; i < n; ++i) holes.push_back(Polygon::Deserialize(r));
  return SwissCheesePolygon(std::move(outer), std::move(holes));
}

std::string SwissCheesePolygon::ToString() const {
  std::string out = "SWISSCHEESE(outer=" + outer_.ToString();
  for (const Polygon& h : holes_) out += ", hole=" + h.ToString();
  out += ")";
  return out;
}

}  // namespace paradise::geom
