#include <cstdio>

#include "geom/box.h"
#include "geom/circle.h"
#include "geom/point.h"

namespace paradise::geom {

std::string Point::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.6g %.6g)", x, y);
  return buf;
}

std::string Box::ToString() const {
  if (IsEmpty()) return "BOX(empty)";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "BOX(%.6g %.6g, %.6g %.6g)", xmin, ymin,
                xmax, ymax);
  return buf;
}

double Circle::Area() const { return 3.14159265358979323846 * radius * radius; }

Circle Circle::DoubleArea() const {
  return Circle(center, radius * 1.4142135623730951);
}

std::string Circle::ToString() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "CIRCLE(%.6g %.6g, r=%.6g)", center.x,
                center.y, radius);
  return buf;
}

}  // namespace paradise::geom
