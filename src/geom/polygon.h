#ifndef PARADISE_GEOM_POLYGON_H_
#define PARADISE_GEOM_POLYGON_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "geom/box.h"
#include "geom/point.h"

namespace paradise::geom {

class Polyline;

/// A simple polygon given as a ring of vertices (implicitly closed: the
/// last vertex connects back to the first). Land-cover features in the
/// benchmark schema. Immutable after construction; the MBR is cached.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> ring);

  const std::vector<Point>& ring() const { return ring_; }
  size_t num_points() const { return ring_.size(); }

  const Box& Mbr() const { return mbr_; }

  /// Unsigned area (shoelace formula).
  double Area() const;

  Point Centroid() const;

  /// Point-in-polygon by the crossing-number rule; boundary points count
  /// as inside.
  bool Contains(const Point& p) const;

  bool Intersects(const Polygon& other) const;
  bool Intersects(const Polyline& line) const;
  bool IntersectsBox(const Box& box) const;

  /// Distance from `p` to the polygon (0 if inside).
  double DistanceTo(const Point& p) const;

  /// Clips this polygon to an axis-aligned box (Sutherland-Hodgman).
  /// Returns an empty polygon when disjoint.
  Polygon ClipToBox(const Box& box) const;

  size_t StorageBytes() const { return 16 + 16 * ring_.size(); }

  void Serialize(ByteWriter* w) const;
  static Polygon Deserialize(ByteReader* r);

  std::string ToString() const;

  friend bool operator==(const Polygon& a, const Polygon& b) {
    return a.ring_ == b.ring_;
  }

 private:
  std::vector<Point> ring_;
  Box mbr_;
};

/// A polygon with holes ("swiss-cheese polygon" in the Paradise data
/// model) — e.g. a lake with islands.
class SwissCheesePolygon {
 public:
  SwissCheesePolygon() = default;
  SwissCheesePolygon(Polygon outer, std::vector<Polygon> holes)
      : outer_(std::move(outer)), holes_(std::move(holes)) {}

  const Polygon& outer() const { return outer_; }
  const std::vector<Polygon>& holes() const { return holes_; }

  const Box& Mbr() const { return outer_.Mbr(); }

  /// Outer area minus hole areas.
  double Area() const;

  bool Contains(const Point& p) const;

  void Serialize(ByteWriter* w) const;
  static SwissCheesePolygon Deserialize(ByteReader* r);

  std::string ToString() const;

 private:
  Polygon outer_;
  std::vector<Polygon> holes_;
};

}  // namespace paradise::geom

#endif  // PARADISE_GEOM_POLYGON_H_
