#ifndef PARADISE_GEOM_CIRCLE_H_
#define PARADISE_GEOM_CIRCLE_H_

#include <string>

#include "geom/box.h"
#include "geom/point.h"

namespace paradise::geom {

/// A circle; used for radius selections (Query 7) and for the expanding
/// probe circles of the `closest` spatial aggregate (Queries 11-12).
struct Circle {
  Point center;
  double radius = 0.0;

  Circle() = default;
  Circle(const Point& c, double r) : center(c), radius(r) {}

  Box Mbr() const {
    return Box(center.x - radius, center.y - radius, center.x + radius,
               center.y + radius);
  }

  bool Contains(const Point& p) const {
    return DistanceSquared(center, p) <= radius * radius;
  }

  bool IntersectsBox(const Box& b) const {
    return b.DistanceTo(center) <= radius;
  }

  double Area() const;

  /// A circle with twice the area (radius * sqrt(2)) — the probe-circle
  /// expansion step of the join-with-aggregate operator.
  Circle DoubleArea() const;

  std::string ToString() const;
};

}  // namespace paradise::geom

#endif  // PARADISE_GEOM_CIRCLE_H_
