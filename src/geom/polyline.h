#ifndef PARADISE_GEOM_POLYLINE_H_
#define PARADISE_GEOM_POLYLINE_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "geom/box.h"
#include "geom/point.h"

namespace paradise::geom {

/// An open chain of line segments — roads and drainage features in the
/// benchmark schema. Immutable after construction; the MBR is cached.
class Polyline {
 public:
  Polyline() = default;
  explicit Polyline(std::vector<Point> points);

  const std::vector<Point>& points() const { return points_; }
  size_t num_points() const { return points_.size(); }
  size_t num_segments() const {
    return points_.size() < 2 ? 0 : points_.size() - 1;
  }

  const Box& Mbr() const { return mbr_; }

  double Length() const;

  /// Minimum distance from `p` to any segment of the chain.
  double DistanceTo(const Point& p) const;

  bool Intersects(const Polyline& other) const;
  bool IntersectsBox(const Box& box) const;

  /// Approximate byte footprint when stored in a tuple.
  size_t StorageBytes() const { return 16 + 16 * points_.size(); }

  void Serialize(ByteWriter* w) const;
  static Polyline Deserialize(ByteReader* r);

  std::string ToString() const;

  friend bool operator==(const Polyline& a, const Polyline& b) {
    return a.points_ == b.points_;
  }

 private:
  std::vector<Point> points_;
  Box mbr_;
};

}  // namespace paradise::geom

#endif  // PARADISE_GEOM_POLYLINE_H_
