#ifndef PARADISE_GEOM_ALGORITHMS_H_
#define PARADISE_GEOM_ALGORITHMS_H_

#include "geom/box.h"
#include "geom/point.h"

namespace paradise::geom {

/// Low-level computational-geometry primitives shared by the polyline and
/// polygon ADTs and by the spatial join's exact-test phase.

/// Sign of the cross product (b-a) x (c-a): >0 counter-clockwise,
/// <0 clockwise, 0 collinear (within eps).
int Orientation(const Point& a, const Point& b, const Point& c);

/// True if point `p` lies on segment [a, b] (within eps).
bool OnSegment(const Point& p, const Point& a, const Point& b);

/// True if closed segments [p1,p2] and [q1,q2] share at least one point.
bool SegmentsIntersect(const Point& p1, const Point& p2, const Point& q1,
                       const Point& q2);

/// Euclidean distance from `p` to the closed segment [a, b].
double PointSegmentDistance(const Point& p, const Point& a, const Point& b);

/// True if segment [a, b] has any point inside or on `box`
/// (Cohen-Sutherland style trivial accept/reject plus exact tests).
bool SegmentIntersectsBox(const Point& a, const Point& b, const Box& box);

}  // namespace paradise::geom

#endif  // PARADISE_GEOM_ALGORITHMS_H_
