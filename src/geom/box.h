#ifndef PARADISE_GEOM_BOX_H_
#define PARADISE_GEOM_BOX_H_

#include <algorithm>
#include <limits>
#include <string>

#include "geom/point.h"

namespace paradise::geom {

/// Axis-aligned rectangle; the minimum bounding rectangle (MBR) type used
/// throughout indexing and spatial partitioning. An *empty* box has
/// xmin > xmax and intersects/contains nothing.
struct Box {
  double xmin = std::numeric_limits<double>::infinity();
  double ymin = std::numeric_limits<double>::infinity();
  double xmax = -std::numeric_limits<double>::infinity();
  double ymax = -std::numeric_limits<double>::infinity();

  Box() = default;
  Box(double x0, double y0, double x1, double y1)
      : xmin(x0), ymin(y0), xmax(x1), ymax(y1) {}

  static Box Empty() { return Box(); }

  /// The square of side `length` centered at `c` — the benchmark's
  /// `location.makeBox(LENGTH)` (Query 8).
  static Box MakeBox(const Point& c, double length) {
    double h = length / 2.0;
    return Box(c.x - h, c.y - h, c.x + h, c.y + h);
  }

  bool IsEmpty() const { return xmin > xmax || ymin > ymax; }

  double Width() const { return IsEmpty() ? 0.0 : xmax - xmin; }
  double Height() const { return IsEmpty() ? 0.0 : ymax - ymin; }
  double Area() const { return Width() * Height(); }
  /// Half-perimeter; the R*-tree margin metric.
  double Margin() const { return Width() + Height(); }

  Point Center() const {
    return Point{(xmin + xmax) / 2.0, (ymin + ymax) / 2.0};
  }

  bool Contains(const Point& p) const {
    return p.x >= xmin && p.x <= xmax && p.y >= ymin && p.y <= ymax;
  }

  bool Contains(const Box& b) const {
    if (b.IsEmpty()) return true;
    return b.xmin >= xmin && b.xmax <= xmax && b.ymin >= ymin && b.ymax <= ymax;
  }

  bool Intersects(const Box& b) const {
    if (IsEmpty() || b.IsEmpty()) return false;
    return xmin <= b.xmax && b.xmin <= xmax && ymin <= b.ymax && b.ymin <= ymax;
  }

  Box Intersection(const Box& b) const {
    Box r(std::max(xmin, b.xmin), std::max(ymin, b.ymin),
          std::min(xmax, b.xmax), std::min(ymax, b.ymax));
    return r.IsEmpty() ? Empty() : r;
  }

  void ExpandToInclude(const Point& p) {
    xmin = std::min(xmin, p.x);
    ymin = std::min(ymin, p.y);
    xmax = std::max(xmax, p.x);
    ymax = std::max(ymax, p.y);
  }

  void ExpandToInclude(const Box& b) {
    if (b.IsEmpty()) return;
    xmin = std::min(xmin, b.xmin);
    ymin = std::min(ymin, b.ymin);
    xmax = std::max(xmax, b.xmax);
    ymax = std::max(ymax, b.ymax);
  }

  Box Union(const Box& b) const {
    Box r = *this;
    r.ExpandToInclude(b);
    return r;
  }

  /// Grows the box by `margin` on every side.
  Box Inflate(double margin) const {
    return Box(xmin - margin, ymin - margin, xmax + margin, ymax + margin);
  }

  /// Minimum distance from `p` to any point of the box; 0 if inside.
  double DistanceTo(const Point& p) const {
    double dx = std::max({xmin - p.x, 0.0, p.x - xmax});
    double dy = std::max({ymin - p.y, 0.0, p.y - ymax});
    return std::sqrt(dx * dx + dy * dy);
  }

  /// Distance from `p` to the boundary (not the interior) of the box.
  /// For a point inside, this is the clearance to the nearest side — the
  /// radius of the largest circle around `p` fully inside the box, which
  /// the spatial semi-join uses (Section 2.7.3 / Query 12).
  double BoundaryDistanceFrom(const Point& p) const {
    if (!Contains(p)) return DistanceTo(p);
    return std::min(std::min(p.x - xmin, xmax - p.x),
                    std::min(p.y - ymin, ymax - p.y));
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.xmin == b.xmin && a.ymin == b.ymin && a.xmax == b.xmax &&
           a.ymax == b.ymax;
  }

  std::string ToString() const;
};

}  // namespace paradise::geom

#endif  // PARADISE_GEOM_BOX_H_
