#ifndef PARADISE_COMMON_LOGGING_H_
#define PARADISE_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

// Invariant-checking macros. Programmer errors abort (the library never
// throws); recoverable conditions use Status instead.

#define PARADISE_CHECK(cond)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,       \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#define PARADISE_CHECK_MSG(cond, msg)                                     \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define PARADISE_DCHECK(cond) PARADISE_CHECK(cond)
#else
#define PARADISE_DCHECK(cond) \
  do {                        \
  } while (0)
#endif

#endif  // PARADISE_COMMON_LOGGING_H_
