#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace paradise::common {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

ThreadPool::Batch* ThreadPool::FindWorkLocked() {
  for (Batch* b : batches_) {
    if (b->HasWork()) return b;
  }
  return nullptr;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [this] { return shutdown_ || FindWorkLocked() != nullptr; });
    if (shutdown_) return;
    // Oldest batch first: nested (newer) batches are always driven by
    // their own caller, so favoring the outer batch keeps phase-level
    // parallelism wide without starving inner joins.
    if (Batch* batch = FindWorkLocked()) RunBatch(batch, &lock);
  }
}

void ThreadPool::RunBatch(Batch* batch, std::unique_lock<std::mutex>* lock) {
  while (batch->next < batch->count) {
    // Guided self-scheduling: claim a per-thread share of the remaining
    // indexes per mutex round-trip instead of one index, so a batch of
    // short tasks doesn't pay a lock handoff (and, on a loaded host, a
    // context switch) per index. Claims shrink toward single indexes as
    // the batch drains, which keeps the tail load-balanced.
    const int remaining = batch->count - batch->next;
    const int begin = batch->next;
    const int end = begin + std::max(1, remaining / (2 * num_threads_));
    batch->next = end;
    ++batch->active;
    lock->unlock();
    std::exception_ptr error;
    for (int i = begin; i < end; ++i) {
      try {
        (*batch->fn)(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    lock->lock();
    if (error && !batch->error) batch->error = error;
    --batch->active;
  }
  if (batch->active == 0) done_cv_.notify_all();
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (workers_.empty()) {
    // Match the pooled semantics: run every index, rethrow the first
    // exception at the barrier. Inline loops nest trivially.
    std::exception_ptr error;
    for (int i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.count = count;
  std::unique_lock<std::mutex> lock(mu_);
  batches_.push_back(&batch);
  work_cv_.notify_all();
  // The caller drives its own batch to completion, so even a nested
  // ParallelFor (posted while every worker is busy in the outer batch)
  // always progresses.
  RunBatch(&batch, &lock);
  done_cv_.wait(lock, [&batch] { return batch.Done(); });
  batches_.erase(std::find(batches_.begin(), batches_.end(), &batch));
  if (batch.error) std::rethrow_exception(batch.error);
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("PARADISE_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace paradise::common
