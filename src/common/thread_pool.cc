#include "common/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace paradise::common {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> g(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_gen = 0;
  for (;;) {
    work_cv_.wait(lock, [this, seen_gen] {
      return shutdown_ || (batch_ != nullptr && batch_gen_ != seen_gen);
    });
    if (shutdown_) return;
    seen_gen = batch_gen_;
    RunBatch(batch_, &lock);
  }
}

void ThreadPool::RunBatch(Batch* batch, std::unique_lock<std::mutex>* lock) {
  while (batch->next < batch->count) {
    const int i = batch->next++;
    ++batch->active;
    lock->unlock();
    std::exception_ptr error;
    try {
      (*batch->fn)(i);
    } catch (...) {
      error = std::current_exception();
    }
    lock->lock();
    if (error && !batch->error) batch->error = error;
    --batch->active;
  }
  if (batch->active == 0) done_cv_.notify_all();
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  if (workers_.empty()) {
    // Match the pooled semantics: run every index, rethrow the first
    // exception at the barrier.
    std::exception_ptr error;
    for (int i = 0; i < count; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    if (error) std::rethrow_exception(error);
    return;
  }
  Batch batch;
  batch.fn = &fn;
  batch.count = count;
  std::unique_lock<std::mutex> lock(mu_);
  PARADISE_CHECK(batch_ == nullptr);  // no nested/concurrent ParallelFor
  batch_ = &batch;
  ++batch_gen_;
  work_cv_.notify_all();
  RunBatch(&batch, &lock);
  done_cv_.wait(lock, [&batch] {
    return batch.next >= batch.count && batch.active == 0;
  });
  batch_ = nullptr;
  if (batch.error) std::rethrow_exception(batch.error);
}

int ThreadPool::DefaultNumThreads() {
  if (const char* env = std::getenv("PARADISE_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace paradise::common
