#ifndef PARADISE_COMMON_RNG_H_
#define PARADISE_COMMON_RNG_H_

#include <cstdint>

namespace paradise {

/// Deterministic, seedable PRNG (xoshiro256** seeded via splitmix64).
/// Used everywhere randomness is needed so data generation, tests, and
/// benchmarks are exactly reproducible across runs and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n).
  uint64_t NextUint(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextUint(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Approximately standard normal (sum of 12 uniforms, mean-shifted).
  double NextGaussian() {
    double s = 0.0;
    for (int i = 0; i < 12; ++i) s += NextDouble();
    return s - 6.0;
  }

  bool NextBool(double p_true) { return NextDouble() < p_true; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace paradise

#endif  // PARADISE_COMMON_RNG_H_
