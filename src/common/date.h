#ifndef PARADISE_COMMON_DATE_H_
#define PARADISE_COMMON_DATE_H_

#include <compare>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace paradise {

/// Calendar date stored as days since 1970-01-01 (proleptic Gregorian).
/// Supports the date arithmetic the benchmark queries need (equality,
/// ranges, "same year").
class Date {
 public:
  Date() : days_(0) {}
  explicit Date(int32_t days_since_epoch) : days_(days_since_epoch) {}

  /// Builds a date from civil fields; aborts on out-of-range fields.
  static Date FromYmd(int year, int month, int day);

  /// Parses "YYYY-MM-DD".
  static StatusOr<Date> Parse(const std::string& text);

  int32_t days_since_epoch() const { return days_; }

  struct Ymd {
    int year;
    int month;
    int day;
  };
  Ymd ToYmd() const;

  int year() const { return ToYmd().year; }

  std::string ToString() const;

  friend auto operator<=>(const Date&, const Date&) = default;

  Date AddDays(int32_t n) const { return Date(days_ + n); }

 private:
  int32_t days_;
};

}  // namespace paradise

#endif  // PARADISE_COMMON_DATE_H_
