#include "common/date.h"

#include <cstdio>

#include "common/logging.h"

namespace paradise {

namespace {

// Howard Hinnant's civil-days algorithms (public domain).
int64_t DaysFromCivil(int y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);            // [0, 399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;           // [0, 146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

void CivilFromDays(int64_t z, int* y, unsigned* m, unsigned* d) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0, 146096]
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t yy = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0, 365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0, 11]
  *d = doy - (153 * mp + 2) / 5 + 1;                             // [1, 31]
  *m = mp + (mp < 10 ? 3 : -9);                                  // [1, 12]
  *y = static_cast<int>(yy + (*m <= 2));
}

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  PARADISE_CHECK(month >= 1 && month <= 12);
  PARADISE_CHECK(day >= 1 && day <= 31);
  return Date(static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month),
                    static_cast<unsigned>(day))));
}

StatusOr<Date> Date::Parse(const std::string& text) {
  int y = 0, m = 0, d = 0;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 || m < 1 ||
      m > 12 || d < 1 || d > 31) {
    return Status::InvalidArgument("bad date: " + text);
  }
  return Date::FromYmd(y, m, d);
}

Date::Ymd Date::ToYmd() const {
  int y;
  unsigned m, d;
  CivilFromDays(days_, &y, &m, &d);
  return Ymd{y, static_cast<int>(m), static_cast<int>(d)};
}

std::string Date::ToString() const {
  Ymd ymd = ToYmd();
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", ymd.year, ymd.month,
                ymd.day);
  return buf;
}

}  // namespace paradise
