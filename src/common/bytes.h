#ifndef PARADISE_COMMON_BYTES_H_
#define PARADISE_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace paradise {

using ByteBuffer = std::vector<uint8_t>;

/// Appends fixed-width little-endian values and length-prefixed blobs to a
/// byte buffer. Used by tuple serialization, page layouts, and the WAL.
class ByteWriter {
 public:
  explicit ByteWriter(ByteBuffer* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(v); }
  void PutU16(uint16_t v) { PutRaw(&v, 2); }
  void PutU32(uint32_t v) { PutRaw(&v, 4); }
  void PutU64(uint64_t v) { PutRaw(&v, 8); }
  void PutI32(int32_t v) { PutRaw(&v, 4); }
  void PutI64(int64_t v) { PutRaw(&v, 8); }
  void PutDouble(double v) { PutRaw(&v, 8); }

  void PutBytes(const void* data, size_t n) {
    PutU32(static_cast<uint32_t>(n));
    PutRaw(data, n);
  }
  void PutString(const std::string& s) { PutBytes(s.data(), s.size()); }

  void PutRaw(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out_->insert(out_->end(), p, p + n);
  }

 private:
  ByteBuffer* out_;
};

/// Reads values written by ByteWriter. Bounds violations abort (they would
/// indicate page/log corruption that CHECKs elsewhere should have caught).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size)
      : data_(data), size_(size), pos_(0) {}
  explicit ByteReader(const ByteBuffer& buf)
      : ByteReader(buf.data(), buf.size()) {}

  uint8_t GetU8() { return data_[Advance(1)]; }
  uint16_t GetU16() { return GetRaw<uint16_t>(); }
  uint32_t GetU32() { return GetRaw<uint32_t>(); }
  uint64_t GetU64() { return GetRaw<uint64_t>(); }
  int32_t GetI32() { return GetRaw<int32_t>(); }
  int64_t GetI64() { return GetRaw<int64_t>(); }
  double GetDouble() { return GetRaw<double>(); }

  std::string GetString() {
    uint32_t n = GetU32();
    size_t at = Advance(n);
    return std::string(reinterpret_cast<const char*>(data_ + at), n);
  }

  ByteBuffer GetBlob() {
    uint32_t n = GetU32();
    size_t at = Advance(n);
    return ByteBuffer(data_ + at, data_ + at + n);
  }

  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  T GetRaw() {
    size_t at = Advance(sizeof(T));
    T v;
    std::memcpy(&v, data_ + at, sizeof(T));
    return v;
  }

  size_t Advance(size_t n) {
    PARADISE_CHECK_MSG(pos_ + n <= size_, "byte reader overrun");
    size_t at = pos_;
    pos_ += n;
    return at;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_;
};

}  // namespace paradise

#endif  // PARADISE_COMMON_BYTES_H_
