#ifndef PARADISE_COMMON_STATUS_H_
#define PARADISE_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace paradise {

/// Error codes used across the system. Kept deliberately coarse: callers
/// branch on success vs failure; the message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kAborted,       // e.g. deadlock victim
  kCorruption,    // on-page / log inconsistency
  kUnavailable,   // transient fault; safe to retry
  kInternal,
};

/// Lightweight status object (no exceptions anywhere in the library).
/// [[nodiscard]]: a dropped Status is a swallowed failure, so every call
/// site must consume it (or explicitly void-cast with a reason).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Aborted(std::string m) {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value-or-error union, mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT(runtime/explicit)
  StatusOr(T value) : rep_(std::move(value)) {}         // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(rep_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }
  T& value() & { return std::get<T>(rep_); }
  const T& value() const& { return std::get<T>(rep_); }
  T&& value() && { return std::get<T>(std::move(rep_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> rep_;
};

#define PARADISE_RETURN_IF_ERROR(expr)            \
  do {                                            \
    ::paradise::Status _st = (expr);              \
    if (!_st.ok()) return _st;                    \
  } while (0)

#define PARADISE_ASSIGN_OR_RETURN(lhs, expr)      \
  auto PARADISE_CONCAT_(_sor, __LINE__) = (expr); \
  if (!PARADISE_CONCAT_(_sor, __LINE__).ok())     \
    return PARADISE_CONCAT_(_sor, __LINE__).status(); \
  lhs = std::move(PARADISE_CONCAT_(_sor, __LINE__)).value()

#define PARADISE_CONCAT_INNER_(a, b) a##b
#define PARADISE_CONCAT_(a, b) PARADISE_CONCAT_INNER_(a, b)

}  // namespace paradise

#endif  // PARADISE_COMMON_STATUS_H_
