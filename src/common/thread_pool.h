#ifndef PARADISE_COMMON_THREAD_POOL_H_
#define PARADISE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paradise::common {

/// Fixed-size worker pool for phase-parallel execution. The calling thread
/// participates in every ParallelFor, so a pool of `num_threads` reaches
/// exactly that much concurrency with `num_threads - 1` spawned workers.
/// With `num_threads <= 1` no workers exist and ParallelFor degenerates to
/// an inline loop on the caller — the PARADISE_THREADS=1 debugging mode.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(i)` for every i in [0, count) and blocks until all calls
  /// have returned (the phase barrier). Indexes are claimed dynamically,
  /// so uneven per-index work self-balances. If any call throws, the first
  /// exception is captured and rethrown here after the barrier (remaining
  /// indexes still run; the process never terminates from a worker
  /// thread). Prefer reporting expected failures out-of-band (e.g. a
  /// per-index Status slot). Only one ParallelFor may be active on a pool
  /// at a time.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  /// PARADISE_THREADS when set to a positive integer, else the hardware
  /// concurrency (at least 1).
  static int DefaultNumThreads();

 private:
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int count = 0;
    int next = 0;    // next unclaimed index; guarded by mu_
    int active = 0;  // threads currently inside fn; guarded by mu_
    std::exception_ptr error;  // first exception thrown; guarded by mu_
  };

  void WorkerLoop();
  /// Claims and runs indexes until the batch is exhausted. `lock` must
  /// hold mu_ on entry; it is released around each fn call and held again
  /// on return.
  void RunBatch(Batch* batch, std::unique_lock<std::mutex>* lock);

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new batch or shutdown
  std::condition_variable done_cv_;  // ParallelFor: batch fully drained
  Batch* batch_ = nullptr;           // non-null while a batch is posted
  uint64_t batch_gen_ = 0;           // bumped per posted batch
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace paradise::common

#endif  // PARADISE_COMMON_THREAD_POOL_H_
