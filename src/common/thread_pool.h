#ifndef PARADISE_COMMON_THREAD_POOL_H_
#define PARADISE_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace paradise::common {

/// Fixed-size worker pool for phase-parallel execution. The calling thread
/// participates in every ParallelFor, so a pool of `num_threads` reaches
/// exactly that much concurrency with `num_threads - 1` spawned workers.
/// With `num_threads <= 1` no workers exist and ParallelFor degenerates to
/// an inline loop on the caller — the PARADISE_THREADS=1 debugging mode.
///
/// ParallelFor nests: a task running inside one batch may issue its own
/// ParallelFor (the node-phase closure fanning a spatial join out over its
/// partitions). The inner call posts a second batch that idle workers join
/// while outer tasks keep draining; the inner caller always participates
/// in its own batch, so nesting can never deadlock even with every worker
/// busy.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs `fn(i)` for every i in [0, count) and blocks until all calls
  /// have returned (the phase barrier). Indexes are claimed dynamically,
  /// so uneven per-index work self-balances. If any call throws, the first
  /// exception is captured and rethrown here after the barrier (remaining
  /// indexes still run; the process never terminates from a worker
  /// thread). Prefer reporting expected failures out-of-band (e.g. a
  /// per-index Status slot). May be called from inside a running batch;
  /// the nested batch is drained by its caller plus any idle workers.
  void ParallelFor(int count, const std::function<void(int)>& fn);

  /// PARADISE_THREADS when set to a positive integer, else the hardware
  /// concurrency (at least 1).
  static int DefaultNumThreads();

 private:
  struct Batch {
    const std::function<void(int)>* fn = nullptr;
    int count = 0;
    int next = 0;    // next unclaimed index; guarded by mu_
    int active = 0;  // threads currently inside fn; guarded by mu_
    std::exception_ptr error;  // first exception thrown; guarded by mu_

    bool HasWork() const { return next < count; }
    bool Done() const { return next >= count && active == 0; }
  };

  void WorkerLoop();
  /// Claims and runs indexes until the batch is exhausted. `lock` must
  /// hold mu_ on entry; it is released around each fn call and held again
  /// on return.
  void RunBatch(Batch* batch, std::unique_lock<std::mutex>* lock);
  /// First posted batch with unclaimed indexes, or null. Requires mu_.
  Batch* FindWorkLocked();

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers: new batch or shutdown
  std::condition_variable done_cv_;  // ParallelFor: some batch fully drained
  std::vector<Batch*> batches_;      // posted batches, oldest first
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace paradise::common

#endif  // PARADISE_COMMON_THREAD_POOL_H_
