#include "core/topology.h"

#include <algorithm>
#include <optional>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "core/cluster.h"
#include "core/coordinator.h"
#include "core/table.h"
#include "index/r_star_tree.h"
#include "sim/cost_model.h"

namespace paradise::core {

TopologyManager::TopologyManager(Cluster* cluster) : cluster_(cluster) {
  EnsureStates();
}

void TopologyManager::EnsureStates() {
  while (static_cast<int>(states_.size()) < cluster_->num_nodes()) {
    states_.push_back(NodeTopologyState::kActive);
  }
}

NodeTopologyState TopologyManager::EffectiveState(int node) const {
  // A node appended via Cluster::AddNode directly (bypassing this layer)
  // has no bookkeeping yet; it is active.
  NodeTopologyState s = node < static_cast<int>(states_.size())
                            ? states_[static_cast<size_t>(node)]
                            : NodeTopologyState::kActive;
  // A coordinator-initiated MarkNodeDead (crash path) may not have gone
  // through OnNodeDead yet; derive death from the cluster's liveness.
  if (s == NodeTopologyState::kActive && !cluster_->alive(node)) {
    return NodeTopologyState::kDead;
  }
  return s;
}

NodeTopologyState TopologyManager::node_state(int node) const {
  PARADISE_CHECK(node >= 0 && node < cluster_->num_nodes());
  return EffectiveState(node);
}

void TopologyManager::BumpEpoch() {
  ++epoch_;
  for (ParallelTable* t : spatial_tables_) t->mutable_grid()->set_epoch(epoch_);
}

SpatialGrid* TopologyManager::canonical_grid() const {
  return spatial_tables_.empty() ? nullptr
                                 : spatial_tables_.front()->mutable_grid();
}

void TopologyManager::RegisterTable(ParallelTable* table) {
  for (ParallelTable* t : tables_) {
    if (t == table) return;
  }
  tables_.push_back(table);
  if (catalog::IsSpatialPartitioning(table->def().partitioning)) {
    if (!spatial_tables_.empty()) {
      const SpatialGrid& canon = spatial_tables_.front()->grid();
      PARADISE_CHECK_MSG(
          table->grid().tiles_per_axis() == canon.tiles_per_axis(),
          "registered spatial tables must share tiles-per-axis");
    }
    spatial_tables_.push_back(table);
    table->mutable_grid()->set_epoch(epoch_);
  }
}

void TopologyManager::UnregisterTable(ParallelTable* table) {
  auto drop = [table](std::vector<ParallelTable*>* v) {
    v->erase(std::remove(v->begin(), v->end(), table), v->end());
  };
  drop(&tables_);
  drop(&spatial_tables_);
  for (auto& [src, stream] : streams_) {
    auto& q = stream.queue;
    q.erase(std::remove_if(q.begin(), q.end(),
                           [table](const Move& m) { return m.table == table; }),
            q.end());
  }
  gc_.erase(std::remove_if(gc_.begin(), gc_.end(),
                           [table](const GcEntry& e) { return e.table == table; }),
            gc_.end());
}

std::vector<int> TopologyManager::ActiveNodes() const {
  std::vector<int> active;
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    if (EffectiveState(n) == NodeTopologyState::kActive) active.push_back(n);
  }
  return active;
}

std::vector<uint32_t> TopologyManager::OwnedTiles(int node) const {
  std::vector<uint32_t> owned;
  const SpatialGrid* grid = canonical_grid();
  if (grid == nullptr) return owned;
  for (uint32_t t = 0; t < grid->num_tiles(); ++t) {
    if (grid->NodeOfTile(t) == static_cast<uint32_t>(node)) owned.push_back(t);
  }
  return owned;
}

void TopologyManager::QueueMove(Move move, bool front) {
  Stream& s = streams_[move.source];
  if (!s.budget_init) {
    s.budget_bytes = static_cast<double>(throttle_.max_burst_bytes);
    s.budget_init = true;
  }
  if (front) {
    s.queue.push_front(std::move(move));
  } else {
    s.queue.push_back(std::move(move));
  }
}

int TopologyManager::AddNode() {
  EnsureStates();
  const int id = cluster_->AddNode();
  states_.push_back(NodeTopologyState::kActive);
  for (ParallelTable* t : tables_) {
    PARADISE_CHECK(t->EnsureFragments(cluster_).ok());
  }
  for (ParallelTable* t : spatial_tables_) {
    t->mutable_grid()->IncludeNode(static_cast<uint32_t>(id));
  }
  SpatialGrid* grid = canonical_grid();
  if (grid != nullptr) {
    // Fair share: num_tiles / num_active tiles, taken from the most
    // loaded donors (ties to the lowest node id, tiles ascending) so
    // repeated scale-outs stay balanced and deterministic.
    const std::vector<int> active = ActiveNodes();
    const uint32_t share =
        grid->num_tiles() / static_cast<uint32_t>(active.size());
    std::map<int, std::vector<uint32_t>> donor_tiles;
    for (int n : active) {
      if (n != id) donor_tiles[n] = OwnedTiles(n);
    }
    std::map<int, size_t> taken;  // per-donor cursor into its tile list
    for (uint32_t planned = 0; planned < share; ++planned) {
      int donor = -1;
      size_t donor_left = 0;
      for (const auto& [n, tiles] : donor_tiles) {
        size_t left = tiles.size() - taken[n];
        if (left > donor_left) {
          donor = n;
          donor_left = left;
        }
      }
      if (donor < 0 || donor_left == 0) break;
      Move m;
      m.spatial = true;
      m.tile = donor_tiles[donor][taken[donor]++];
      m.source = donor;
      m.target = id;
      QueueMove(std::move(m));
    }
  }
  BumpEpoch();
  UpdateBackgroundLoad();
  return id;
}

void TopologyManager::DrainNode(int node) {
  EnsureStates();
  PARADISE_CHECK_MSG(EffectiveState(node) == NodeTopologyState::kActive,
                     "only an active node can drain");
  states_[static_cast<size_t>(node)] = NodeTopologyState::kDraining;
  std::vector<int> targets = ActiveNodes();
  targets.erase(std::remove(targets.begin(), targets.end(), node),
                targets.end());
  PARADISE_CHECK_MSG(!targets.empty(), "cannot drain the last active node");
  size_t rr = 0;
  for (uint32_t tile : OwnedTiles(node)) {
    Move m;
    m.spatial = true;
    m.tile = tile;
    m.source = node;
    m.target = targets[rr++ % targets.size()];
    QueueMove(std::move(m));
  }
  for (ParallelTable* t : tables_) {
    if (catalog::IsSpatialPartitioning(t->def().partitioning)) continue;
    for (size_t i = 0; i < targets.size(); ++i) {
      Move m;
      m.spatial = false;
      m.table = t;
      m.stripe_index = i;
      m.stripe_count = targets.size();
      m.source = node;
      m.target = targets[i];
      QueueMove(std::move(m));
      ++stats_.stripe_moves;
    }
  }
  BumpEpoch();
  UpdateBackgroundLoad();
}

void TopologyManager::RemoveNode(int node) {
  EnsureStates();
  PARADISE_CHECK_MSG(EffectiveState(node) == NodeTopologyState::kDraining,
                     "remove requires a completed drain");
  auto it = streams_.find(node);
  PARADISE_CHECK_MSG(it == streams_.end() || it->second.queue.empty(),
                     "remove requires the drain stream to be empty");
  PARADISE_CHECK_MSG(OwnedTiles(node).empty(),
                     "remove requires the node to own no tiles");
  // Deferred GC on the departing node can run now regardless of pins: a
  // dead node is unreachable to every reader (RunPhase skips it).
  for (auto gc_it = gc_.begin(); gc_it != gc_.end();) {
    if (gc_it->node == node) {
      PARADISE_CHECK(
          gc_it->table->DropRows(cluster_, gc_it->node, gc_it->rows).ok());
      stats_.gc_rows += static_cast<int64_t>(gc_it->rows.size());
      gc_it = gc_.erase(gc_it);
    } else {
      ++gc_it;
    }
  }
  PARADISE_CHECK(cluster_->node(node).pool()->FlushAll().ok());
  cluster_->MarkNodeDead(node);
  states_[static_cast<size_t>(node)] = NodeTopologyState::kRemoved;
  BumpEpoch();
}

void TopologyManager::ReinstateNode(int node) {
  EnsureStates();
  PARADISE_CHECK_MSG(states_[static_cast<size_t>(node)] ==
                         NodeTopologyState::kRemoved,
                     "only a planned-removed node can be reinstated");
  cluster_->MarkNodeAlive(node);
  states_[static_cast<size_t>(node)] = NodeTopologyState::kActive;
  SpatialGrid* grid = canonical_grid();
  if (grid != nullptr) {
    // Move back every tile whose base owner the node is. The override map
    // is unordered; sort by tile so the plan is deterministic.
    std::vector<std::pair<uint32_t, uint32_t>> back;
    for (const auto& [tile, owner] : grid->reassigned_tiles()) {
      if (grid->BaseNodeOfTile(tile) == static_cast<uint32_t>(node)) {
        back.emplace_back(tile, owner);
      }
    }
    std::sort(back.begin(), back.end());
    for (const auto& [tile, owner] : back) {
      Move m;
      m.spatial = true;
      m.tile = tile;
      m.source = static_cast<int>(owner);
      m.target = node;
      QueueMove(std::move(m));
    }
  }
  BumpEpoch();
  UpdateBackgroundLoad();
}

int TopologyManager::ShedHotTiles(int source, int k) {
  EnsureStates();
  if (k <= 0 || EffectiveState(source) != NodeTopologyState::kActive) {
    return 0;
  }
  SpatialGrid* grid = canonical_grid();
  if (grid == nullptr) return 0;
  std::vector<int> targets = ActiveNodes();
  targets.erase(std::remove(targets.begin(), targets.end(), source),
                targets.end());
  if (targets.empty()) return 0;

  // Sample per-tile weight: R*-tree candidate counts across the
  // registered spatial tables, charged as index probes on the source.
  sim::NodeClock* clock = cluster_->node(source).clock();
  std::vector<std::pair<int64_t, uint32_t>> weighted;  // (-count, tile)
  for (uint32_t tile : OwnedTiles(source)) {
    if (grid->NodeOfTile(tile) != static_cast<uint32_t>(source)) continue;
    int64_t count = 0;
    for (ParallelTable* t : spatial_tables_) {
      if (source >= t->num_fragments()) continue;
      const ParallelTable::Fragment& frag = t->fragment(source);
      if (frag.rtree == nullptr) continue;
      clock->ChargeCpu(sim::cpu_cost::kIndexProbe);
      frag.rtree->SearchOverlap(grid->TileBox(tile),
                                [&](const geom::Box&, uint64_t) {
                                  ++count;
                                  return true;
                                });
    }
    weighted.emplace_back(-count, tile);
  }
  std::sort(weighted.begin(), weighted.end());

  // Targets ranked by owned + already-planned tiles (least loaded first,
  // ties to the lowest id).
  std::map<int, size_t> load;
  for (int t : targets) load[t] = OwnedTiles(t).size();
  for (const auto& [src, stream] : streams_) {
    for (const Move& m : stream.queue) {
      if (m.spatial && load.count(m.target) != 0) ++load[m.target];
    }
  }
  int planned = 0;
  for (const auto& [neg_count, tile] : weighted) {
    if (planned >= k || neg_count == 0) break;
    int best = -1;
    size_t best_load = 0;
    for (const auto& [t, l] : load) {
      if (best < 0 || l < best_load) {
        best = t;
        best_load = l;
      }
    }
    Move m;
    m.spatial = true;
    m.tile = tile;
    m.source = source;
    m.target = best;
    QueueMove(std::move(m));
    ++load[best];
    ++planned;
  }
  if (planned > 0) {
    BumpEpoch();
    UpdateBackgroundLoad();
  }
  return planned;
}

void TopologyManager::OnNodeDead(int node) {
  EnsureStates();
  if (states_[static_cast<size_t>(node)] == NodeTopologyState::kDead) return;
  states_[static_cast<size_t>(node)] = NodeTopologyState::kDead;
  const std::vector<int> active = ActiveNodes();
  // Moves sourced at the dead node are moot (salvage re-homes its data);
  // moves targeting it retarget onto the lowest-id other active node so
  // a drain in progress can still complete.
  auto stream_it = streams_.find(node);
  if (stream_it != streams_.end()) stream_it->second.queue.clear();
  // Deferred GC aimed at the dead node is moot: salvage decommissions the
  // whole fragment, so the queued row ids would dangle.
  gc_.erase(std::remove_if(gc_.begin(), gc_.end(),
                           [node](const GcEntry& e) { return e.node == node; }),
            gc_.end());
  for (auto& [src, stream] : streams_) {
    for (Move& m : stream.queue) {
      if (m.target != node) continue;
      int retarget = -1;
      for (int a : active) {
        if (a != m.source) {
          retarget = a;
          break;
        }
      }
      m.target = retarget;  // -1 moves are skipped by ExecuteMove
    }
  }
  BumpEpoch();
  UpdateBackgroundLoad();
}

Status TopologyManager::MigrateForLoss(ParallelTable* table, int dead_node) {
  PARADISE_CHECK_MSG(!cluster_->alive(dead_node),
                     "loss migration requires the node to be marked dead");
  OnNodeDead(dead_node);
  PARADISE_RETURN_IF_ERROR(table->SalvageDeadNode(cluster_, dead_node));
  if (catalog::IsSpatialPartitioning(table->def().partitioning)) {
    table->mutable_grid()->set_epoch(epoch_);
  }
  // Salvage bulk-inserted unlogged rows into every survivor; checkpoint
  // them so a second crash cannot silently drop salvaged copies.
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    if (!cluster_->alive(n)) continue;
    PARADISE_RETURN_IF_ERROR(cluster_->node(n).pool()->FlushAll());
  }
  // The table's contents changed shape under every cached result computed
  // from it (the old redecluster path silently skipped this).
  WorkloadSession* session = cluster_->workload_session();
  if (session != nullptr) {
    session->InvalidateCachedResults(table->def().name);
    ++stats_.cache_invalidations;
  }
  // The loss rehash may have routed the dead node's tiles onto a node
  // that is mid-drain; put those tiles back on its drain stream.
  RequeueDrainingTiles();
  return Status::OK();
}

void TopologyManager::RequeueDrainingTiles() {
  if (canonical_grid() == nullptr) return;
  for (int node = 0; node < static_cast<int>(states_.size()); ++node) {
    if (states_[static_cast<size_t>(node)] != NodeTopologyState::kDraining) {
      continue;
    }
    const std::vector<int> targets = ActiveNodes();
    if (targets.empty()) {
      // The loss left no active node to receive the drain: abort it and
      // return the node to duty (it may be the last copy of the data).
      // An operator can re-issue the drain once capacity returns.
      states_[static_cast<size_t>(node)] = NodeTopologyState::kActive;
      auto sit = streams_.find(node);
      if (sit != streams_.end()) sit->second.queue.clear();
      continue;
    }
    std::unordered_set<uint32_t> queued;
    auto it = streams_.find(node);
    if (it != streams_.end()) {
      for (const Move& m : it->second.queue) {
        if (m.spatial) queued.insert(m.tile);
      }
    }
    size_t rr = 0;
    for (uint32_t tile : OwnedTiles(node)) {
      if (queued.count(tile) != 0) continue;
      Move m;
      m.spatial = true;
      m.tile = tile;
      m.source = node;
      m.target = targets[rr++ % targets.size()];
      QueueMove(std::move(m));
    }
  }
  UpdateBackgroundLoad();
}

bool TopologyManager::migration_idle() const {
  for (const auto& [src, stream] : streams_) {
    if (!stream.queue.empty()) return false;
  }
  return true;
}

int64_t TopologyManager::pending_moves() const {
  int64_t n = 0;
  for (const auto& [src, stream] : streams_) {
    n += static_cast<int64_t>(stream.queue.size());
  }
  return n;
}

uint64_t TopologyManager::PinEpoch() {
  std::lock_guard<std::mutex> g(pins_mu_);
  pins_.insert(epoch_);
  return epoch_;
}

void TopologyManager::UnpinEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> g(pins_mu_);
  auto it = pins_.find(epoch);
  if (it != pins_.end()) pins_.erase(it);
}

void TopologyManager::MaybeCollectGarbage(std::set<int>* touched_nodes) {
  uint64_t min_pin = 0;
  bool pinned = false;
  {
    std::lock_guard<std::mutex> g(pins_mu_);
    if (!pins_.empty()) {
      pinned = true;
      min_pin = *pins_.begin();
    }
  }
  while (!gc_.empty()) {
    const GcEntry& e = gc_.front();
    // A reader pinned before the cutover's epoch may still resolve rows
    // to the old home; defer their physical deletion.
    if (pinned && min_pin < e.epoch) break;
    // Re-validated drop: a later move (a crash retarget lands on existing
    // replica holders) may have re-claimed or re-promoted a queued row.
    auto dropped = e.table->DropOrphanedRows(cluster_, e.node, e.rows);
    PARADISE_CHECK(dropped.ok());
    stats_.gc_rows += *dropped;
    touched_nodes->insert(e.node);
    gc_.pop_front();
  }
}

void TopologyManager::UpdateBackgroundLoad() {
  WorkloadSession* session = cluster_->workload_session();
  if (session != nullptr) {
    session->set_background_load(migration_idle() ? 0 : 1);
  }
}

StatusOr<TopologyManager::MoveOutcome> TopologyManager::ExecuteMove(
    const Move& move, std::set<int>* touched_nodes) {
  MoveOutcome out;
  if (move.target < 0 || !cluster_->alive(move.source) ||
      !cluster_->alive(move.target) || move.source == move.target) {
    return out;  // stale (crash or retarget raced the plan); drop
  }
  SpatialGrid* grid = canonical_grid();
  if (move.spatial) {
    PARADISE_CHECK(grid != nullptr);
    if (grid->NodeOfTile(move.tile) != static_cast<uint32_t>(move.source)) {
      return out;  // tile moved on (e.g. by a loss rehash); plan is stale
    }
  }

  // Stage: ship the tile's rows for every registered spatial table (or
  // the one table's stripe) as non-primary copies at the target.
  std::vector<std::pair<ParallelTable*, ParallelTable::StagedMove>> staged;
  if (move.spatial) {
    for (ParallelTable* t : spatial_tables_) {
      PARADISE_ASSIGN_OR_RETURN(
          ParallelTable::StagedMove st,
          t->StageTileRows(cluster_, move.tile, move.source, move.target));
      out.bytes += st.bytes;
      stats_.migration_bytes += st.bytes;
      stats_.rows_shipped += st.rows_shipped;
      stats_.rows_deduped += st.rows_deduped;
      staged.emplace_back(t, std::move(st));
    }
  } else {
    PARADISE_ASSIGN_OR_RETURN(
        ParallelTable::StagedMove st,
        move.table->StageStripeRows(cluster_, move.source, move.target,
                                    move.stripe_index, move.stripe_count));
    out.bytes += st.bytes;
    stats_.migration_bytes += st.bytes;
    stats_.rows_shipped += st.rows_shipped;
    stats_.rows_deduped += st.rows_deduped;
    staged.emplace_back(move.table, std::move(st));
  }
  // "The last run lands": the staged copies must be durable at the
  // target before cutover can flip ownership — and before any injected
  // crash, which discards volatile state only.
  PARADISE_RETURN_IF_ERROR(cluster_->node(move.target).pool()->FlushAll());
  touched_nodes->insert(move.source);
  touched_nodes->insert(move.target);

  const int64_t ordinal = migration_ordinal_++;
  std::optional<sim::MigrationCrashEvent> crash;
  if (cluster_->fault_injector() != nullptr) {
    crash = cluster_->fault_injector()->TakeMigrationCrash(ordinal);
  }
  if (crash.has_value()) {
    out.crashed = true;
    const int victim = crash->target_side ? move.target : move.source;
    cluster_->CrashNode(victim);
    cluster_->coordinator_clock()->ChargeIdle(
        cluster_->retry_policy().detect_timeout_seconds);
    if (!crash->permanent) {
      PARADISE_RETURN_IF_ERROR(cluster_->RecoverNode(victim));
    }
    // Roll back the staged copies (the tile stays exactly-once owned by
    // its old home). Post-crash is safe: the target's staged runs were
    // flushed, so the tombstoning deletes below see them; the deletes
    // are then flushed themselves at pump end.
    for (auto& [t, st] : staged) {
      PARADISE_RETURN_IF_ERROR(t->UnstageMove(cluster_, st));
      ++stats_.rollbacks;
    }
    PARADISE_RETURN_IF_ERROR(cluster_->node(move.target).pool()->FlushAll());
    if (!crash->permanent) {
      // Transient: the move resumes at the front of its stream; the
      // retry's dedup pass reclaims any copies that survived.
      QueueMove(move, /*front=*/true);
      ++stats_.resumed_moves;
      return out;
    }
    cluster_->MarkNodeDead(victim);
    OnNodeDead(victim);
    touched_nodes->insert(victim);
    if (cluster_->node_loss_handler()) {
      PARADISE_RETURN_IF_ERROR(cluster_->node_loss_handler()(victim));
    } else {
      for (ParallelTable* t : tables_) {
        PARADISE_RETURN_IF_ERROR(MigrateForLoss(t, victim));
      }
    }
    return out;
  }

  // Cutover: one epoch bump repoints the tile in every registered grid;
  // primary flags flip on both sides and rows the source no longer
  // covers become deferred garbage (readers pinned on an older epoch
  // still resolve them).
  ++epoch_;
  if (move.spatial) {
    for (ParallelTable* t : spatial_tables_) {
      t->mutable_grid()->ReassignTile(move.tile,
                                      static_cast<uint32_t>(move.target));
      t->mutable_grid()->set_epoch(epoch_);
    }
  }
  WorkloadSession* session = cluster_->workload_session();
  for (auto& [t, st] : staged) {
    PARADISE_ASSIGN_OR_RETURN(ParallelTable::CutoverResult cut,
                              t->CutoverMove(cluster_, st));
    if (!cut.orphaned_source_rows.empty()) {
      GcEntry e;
      e.table = t;
      e.node = move.source;
      e.rows = std::move(cut.orphaned_source_rows);
      e.epoch = epoch_;
      gc_.push_back(std::move(e));
    }
    if (!st.empty()) {
      // The physical layout under any cached result or sampled histogram
      // computed from this table just changed — same rule as
      // NoteTableMutation.
      cluster_->catalog()->InvalidateTableStats(t->def().name);
      if (session != nullptr) {
        session->InvalidateCachedResults(t->def().name);
        ++stats_.cache_invalidations;
      }
    }
  }
  if (move.spatial) {
    ++stats_.tiles_moved;
  }
  // The flag flips above are unlogged updates in dirty pool pages. Land
  // them now, not at pump end: a crash injected into a *later* move of
  // the same pump step must not be able to revert this committed cutover
  // on disk (recovery replays the WAL only).
  PARADISE_RETURN_IF_ERROR(cluster_->node(move.source).pool()->FlushAll());
  PARADISE_RETURN_IF_ERROR(cluster_->node(move.target).pool()->FlushAll());
  return out;
}

Status TopologyManager::PumpMigration(double now_seconds) {
  EnsureStates();
  WorkloadSession* session = cluster_->workload_session();
  const int in_flight = session != nullptr ? session->in_flight() : 0;
  const bool quiescent = in_flight == 0;

  // Refill every stream's token bucket over the modeled interval since
  // the last pump, slowed by the admission level so migration backs off
  // under load instead of inflating foreground p99.
  double dt = now_seconds - last_pump_seconds_;
  if (dt < 0) dt = 0;
  last_pump_seconds_ = now_seconds;
  const double refill = throttle_.bytes_per_second /
                        (1.0 + throttle_.contention_slowdown *
                                   static_cast<double>(in_flight));
  for (auto& [src, stream] : streams_) {
    if (stream.queue.empty()) {
      stream.budget_bytes = static_cast<double>(throttle_.max_burst_bytes);
      continue;
    }
    stream.budget_bytes =
        std::min(stream.budget_bytes + refill * dt,
                 static_cast<double>(throttle_.max_burst_bytes));
  }
  if (!quiescent) {
    if (!migration_idle()) ++stats_.cutovers_deferred;
    return Status::OK();
  }

  std::set<int> touched;
  bool crashed = false;
  for (auto& [src, stream] : streams_) {
    while (!crashed && !stream.queue.empty() && stream.budget_bytes > 0.0) {
      Move move = stream.queue.front();
      stream.queue.pop_front();
      PARADISE_ASSIGN_OR_RETURN(MoveOutcome out, ExecuteMove(move, &touched));
      stream.budget_bytes -= static_cast<double>(out.bytes);
      // A crash mid-move re-plans streams (loss rehash, requeue); stop
      // this pump step and let the next one see the new plan.
      if (out.crashed) crashed = true;
    }
    if (crashed) break;
  }

  // Cutover flag flips and GC tombstones are unlogged updates sitting in
  // dirty pool pages; land them so a later injected crash cannot resurrect
  // a migrated-away row.
  MaybeCollectGarbage(&touched);
  for (int n : touched) {
    PARADISE_RETURN_IF_ERROR(cluster_->node(n).pool()->FlushAll());
  }
  UpdateBackgroundLoad();
  return Status::OK();
}

Status TopologyManager::DrainMigration(double now_seconds) {
  WorkloadSession* session = cluster_->workload_session();
  PARADISE_CHECK_MSG(session == nullptr || session->in_flight() == 0,
                     "DrainMigration requires a quiescent session");
  for (int guard = 0; !migration_idle(); ++guard) {
    PARADISE_CHECK_MSG(guard < 100000, "migration drain does not converge");
    for (auto& [src, stream] : streams_) {
      stream.budget_bytes = 1e18;
      stream.budget_init = true;
    }
    PARADISE_RETURN_IF_ERROR(PumpMigration(now_seconds));
  }
  return Status::OK();
}

SpatialGrid TopologyManager::MakeRoutingGrid(const geom::Box& universe,
                                             uint32_t tiles_per_axis) const {
  SpatialGrid g(universe, tiles_per_axis,
                static_cast<uint32_t>(cluster_->num_nodes()));
  g.set_epoch(epoch_);
  const SpatialGrid* canon =
      spatial_tables_.empty() ? nullptr : &spatial_tables_.front()->grid();
  if (canon != nullptr && canon->tiles_per_axis() == tiles_per_axis &&
      canon->universe().xmin == universe.xmin &&
      canon->universe().ymin == universe.ymin &&
      canon->universe().xmax == universe.xmax &&
      canon->universe().ymax == universe.ymax) {
    // Same geometry: carry the data grid's reassignments so compute
    // placement follows the migrated data.
    std::vector<std::pair<uint32_t, uint32_t>> overrides(
        canon->reassigned_tiles().begin(), canon->reassigned_tiles().end());
    std::sort(overrides.begin(), overrides.end());
    for (const auto& [tile, owner] : overrides) g.ReassignTile(tile, owner);
  }
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    if (!cluster_->alive(n)) g.MarkNodeDead(static_cast<uint32_t>(n));
  }
  return g;
}

}  // namespace paradise::core
