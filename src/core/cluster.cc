#include "core/cluster.h"

#include "common/logging.h"
#include "core/topology.h"

namespace paradise::core {

namespace {
// Volume-id layout per node: data volumes first, then the LOB volume and
// the temp volume. Volume ids are node-local.
constexpr uint32_t kLobVolumeOffset = 100;
constexpr uint32_t kTempVolumeOffset = 101;
}  // namespace

Node::Node(uint32_t id, size_t buffer_pool_frames, int data_volumes,
           int pool_shards)
    : id_(id),
      pool_(std::make_unique<storage::BufferPool>(buffer_pool_frames,
                                                  pool_shards)),
      log_(std::make_unique<storage::LogManager>(&clock_)) {
  txn_manager_ = std::make_unique<storage::TransactionManager>(log_.get());
  for (int i = 0; i < data_volumes; ++i) {
    volumes_.push_back(std::make_unique<storage::DiskVolume>(
        static_cast<uint32_t>(i), &clock_));
  }
  auto lob_volume =
      std::make_unique<storage::DiskVolume>(kLobVolumeOffset, &clock_);
  auto temp_volume =
      std::make_unique<storage::DiskVolume>(kTempVolumeOffset, &clock_);
  for (auto& v : volumes_) pool_->AttachVolume(v.get());
  pool_->AttachVolume(lob_volume.get());
  pool_->AttachVolume(temp_volume.get());
  lob_store_ = std::make_unique<storage::LargeObjectStore>(pool_.get(),
                                                           lob_volume.get());
  temp_store_ = std::make_unique<storage::LargeObjectStore>(pool_.get(),
                                                            temp_volume.get());
  volumes_.push_back(std::move(lob_volume));
  volumes_.push_back(std::move(temp_volume));
  local_source_ =
      std::make_unique<array::LocalTileSource>(lob_store_.get(), &clock_);
  temp_source_ =
      std::make_unique<array::LocalTileSource>(temp_store_.get(), &clock_);
}

void Node::SetFaultInjector(sim::FaultInjector* injector) {
  for (auto& v : volumes_) v->SetFaultInjector(injector, id_);
}

Cluster::Cluster(int num_nodes) : Cluster(num_nodes, Options{}) {}

Cluster::Cluster(int num_nodes, Options options) : options_(options) {
  PARADISE_CHECK(num_nodes > 0);
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(static_cast<uint32_t>(i),
                                            options.buffer_pool_frames,
                                            options.data_volumes_per_node,
                                            options.pool_shards));
  }
  alive_.assign(nodes_.size(), true);
  topology_ = std::make_unique<TopologyManager>(this);
}

Cluster::~Cluster() = default;

int Cluster::AddNode() {
  int id = static_cast<int>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(static_cast<uint32_t>(id),
                                          options_.buffer_pool_frames,
                                          options_.data_volumes_per_node,
                                          options_.pool_shards));
  alive_.push_back(true);
  Node& n = *nodes_.back();
  n.pool()->set_retry_policy(retry_policy_);
  if (fault_injector_ != nullptr) n.SetFaultInjector(fault_injector_);
  return id;
}

void Cluster::ChargeTransfer(uint32_t from, uint32_t to, int64_t bytes) {
  if (from == to || bytes <= 0) return;  // shared-memory transport
  int64_t messages = (bytes + 8191) / 8192;
  nodes_[from]->clock()->ChargeNet(messages, bytes);
  nodes_[to]->clock()->ChargeNet(messages, bytes);
  if (fault_injector_ == nullptr) return;
  int64_t ordinal;
  {
    std::lock_guard<std::mutex> g(transfer_mu_);
    ordinal =
        transfer_ordinals_[(static_cast<uint64_t>(from) << 32) | to]++;
  }
  sim::TransferFault fault = fault_injector_->OnTransfer(from, to, ordinal);
  for (int i = 0; i < fault.dropped; ++i) {
    // Lost batch: the sender waits out the ack timeout, then both links
    // carry the retransmission.
    nodes_[from]->clock()->ChargeIdle(fault_injector_->drop_timeout_seconds());
    nodes_[from]->clock()->ChargeNet(messages, bytes);
    nodes_[to]->clock()->ChargeNet(messages, bytes);
  }
  if (fault.duplicated) {
    // Spurious duplicate: the receiver pays to receive and discard it.
    nodes_[to]->clock()->ChargeNet(messages, bytes);
    nodes_[to]->clock()->ChargeCpu(sim::cpu_cost::kTupleOverhead);
  }
}

void Cluster::SetFaultInjector(sim::FaultInjector* injector) {
  fault_injector_ = injector;
  for (auto& n : nodes_) n->SetFaultInjector(injector);
  std::lock_guard<std::mutex> g(transfer_mu_);
  transfer_ordinals_.clear();
}

void Cluster::set_retry_policy(const sim::RetryPolicy& policy) {
  retry_policy_ = policy;
  for (auto& n : nodes_) n->pool()->set_retry_policy(policy);
}

int Cluster::num_alive() const {
  int count = 0;
  for (bool a : alive_) count += a ? 1 : 0;
  return count;
}

std::vector<int> Cluster::alive_node_ids() const {
  std::vector<int> ids;
  ids.reserve(alive_.size());
  for (size_t i = 0; i < alive_.size(); ++i) {
    if (alive_[i]) ids.push_back(static_cast<int>(i));
  }
  return ids;
}

void Cluster::CrashNode(int i) {
  Node& n = *nodes_[static_cast<size_t>(i)];
  n.pool()->DiscardAll();      // volatile state is gone
  n.log()->CrashTruncate();    // unforced log tail is gone
}

Status Cluster::RecoverNode(
    int i, storage::RecoveryManager::RecoveryStats* stats) {
  Node& n = *nodes_[static_cast<size_t>(i)];
  // Restart reads the durable log sequentially off the log disk.
  int64_t log_bytes = 0;
  for (const auto& rec : n.log()->DurableRecords()) {
    log_bytes += 64 + static_cast<int64_t>(rec.before.size()) +
                 static_cast<int64_t>(rec.after.size());
  }
  if (log_bytes > 0) n.clock()->ChargeDiskRead(log_bytes, 1);
  storage::RecoveryManager recovery(n.txn_manager());
  PARADISE_RETURN_IF_ERROR(recovery.Recover());
  // Recovered pages must reach the durable medium before the query
  // resumes, or a second crash would lose the repairs.
  PARADISE_RETURN_IF_ERROR(n.pool()->FlushAll());
  if (stats != nullptr) *stats = recovery.stats();
  return Status::OK();
}

void Cluster::MarkNodeDead(int i) {
  PARADISE_CHECK_MSG(num_alive() > 1, "cannot lose the last node");
  alive_[static_cast<size_t>(i)] = false;
}

void Cluster::MarkNodeAlive(int i) {
  alive_[static_cast<size_t>(i)] = true;
}

void Cluster::ResetForQuery() {
  for (auto& n : nodes_) {
    PARADISE_CHECK(n->pool()->FlushAll().ok());
    n->pool()->DiscardAll();  // cold buffer pool, as in Section 3.2
    n->clock()->Reset();
  }
  coordinator_clock_.Reset();
}

common::ThreadPool* Cluster::thread_pool() {
  if (thread_pool_ == nullptr) {
    thread_pool_ = std::make_unique<common::ThreadPool>(
        common::ThreadPool::DefaultNumThreads());
  }
  return thread_pool_.get();
}

void Cluster::SetNumThreads(int n) {
  thread_pool_ = std::make_unique<common::ThreadPool>(n);
}

std::vector<sim::ResourceUsage> Cluster::EndPhaseAllNodes() {
  std::vector<sim::ResourceUsage> usages;
  usages.reserve(nodes_.size());
  for (auto& n : nodes_) usages.push_back(n->clock()->EndPhase());
  return usages;
}

}  // namespace paradise::core
