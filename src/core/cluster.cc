#include "core/cluster.h"

#include "common/logging.h"

namespace paradise::core {

namespace {
// Volume-id layout per node: data volumes first, then the LOB volume and
// the temp volume. Volume ids are node-local.
constexpr uint32_t kLobVolumeOffset = 100;
constexpr uint32_t kTempVolumeOffset = 101;
}  // namespace

Node::Node(uint32_t id, size_t buffer_pool_frames, int data_volumes)
    : id_(id),
      pool_(std::make_unique<storage::BufferPool>(buffer_pool_frames)) {
  for (int i = 0; i < data_volumes; ++i) {
    volumes_.push_back(std::make_unique<storage::DiskVolume>(
        static_cast<uint32_t>(i), &clock_));
  }
  auto lob_volume =
      std::make_unique<storage::DiskVolume>(kLobVolumeOffset, &clock_);
  auto temp_volume =
      std::make_unique<storage::DiskVolume>(kTempVolumeOffset, &clock_);
  for (auto& v : volumes_) pool_->AttachVolume(v.get());
  pool_->AttachVolume(lob_volume.get());
  pool_->AttachVolume(temp_volume.get());
  lob_store_ = std::make_unique<storage::LargeObjectStore>(pool_.get(),
                                                           lob_volume.get());
  temp_store_ = std::make_unique<storage::LargeObjectStore>(pool_.get(),
                                                            temp_volume.get());
  volumes_.push_back(std::move(lob_volume));
  volumes_.push_back(std::move(temp_volume));
  local_source_ =
      std::make_unique<array::LocalTileSource>(lob_store_.get(), &clock_);
  temp_source_ =
      std::make_unique<array::LocalTileSource>(temp_store_.get(), &clock_);
}

Cluster::Cluster(int num_nodes) : Cluster(num_nodes, Options{}) {}

Cluster::Cluster(int num_nodes, Options options) {
  PARADISE_CHECK(num_nodes > 0);
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>(static_cast<uint32_t>(i),
                                            options.buffer_pool_frames,
                                            options.data_volumes_per_node));
  }
}

void Cluster::ChargeTransfer(uint32_t from, uint32_t to, int64_t bytes) {
  if (from == to || bytes <= 0) return;  // shared-memory transport
  int64_t messages = (bytes + 8191) / 8192;
  nodes_[from]->clock()->ChargeNet(messages, bytes);
  nodes_[to]->clock()->ChargeNet(messages, bytes);
}

void Cluster::ResetForQuery() {
  for (auto& n : nodes_) {
    PARADISE_CHECK(n->pool()->FlushAll().ok());
    n->pool()->DiscardAll();  // cold buffer pool, as in Section 3.2
    n->clock()->Reset();
  }
  coordinator_clock_.Reset();
}

common::ThreadPool* Cluster::thread_pool() {
  if (thread_pool_ == nullptr) {
    thread_pool_ = std::make_unique<common::ThreadPool>(
        common::ThreadPool::DefaultNumThreads());
  }
  return thread_pool_.get();
}

void Cluster::SetNumThreads(int n) {
  thread_pool_ = std::make_unique<common::ThreadPool>(n);
}

std::vector<sim::ResourceUsage> Cluster::EndPhaseAllNodes() {
  std::vector<sim::ResourceUsage> usages;
  usages.reserve(nodes_.size());
  for (auto& n : nodes_) usages.push_back(n->clock()->EndPhase());
  return usages;
}

}  // namespace paradise::core
