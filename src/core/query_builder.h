#ifndef PARADISE_CORE_QUERY_BUILDER_H_
#define PARADISE_CORE_QUERY_BUILDER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/parallel_ops.h"

namespace paradise::core {

/// A declarative query description over ParallelTables, and a small
/// cost-based optimizer that makes the physical decisions Section 2.4
/// describes:
///   - access path: sequential scan vs B+-tree probe vs R*-tree probe,
///     driven by the predicates and the catalog's index metadata;
///   - join algorithm: broadcast + indexed nested loops when one input is
///     small and the other has a spatial index, PBSM with spatial
///     redeclustering otherwise;
///   - aggregate placement: always two-phase (local per node, single
///     global operator at the coordinator).
///
/// Usage:
///   auto result = Query::On(&landCover)
///                     .WhereOverlaps(2, region)
///                     .WhereIntEquals(1, kOilField)
///                     .Select({exec::Col(0), exec::AreaOf(exec::Col(2))})
///                     .Run(&coord);
class Query {
 public:
  static Query On(const ParallelTable* table);

  /// Sargable predicates the optimizer understands. Several can be
  /// combined; the optimizer picks the most selective indexed one as the
  /// access path and applies the rest as residual filters.
  Query&& WhereStringEquals(size_t column, std::string value) &&;
  Query&& WhereIntEquals(size_t column, int64_t value) &&;
  Query&& WhereIntBetween(size_t column, int64_t lo, int64_t hi) &&;
  Query&& WhereDateBetween(size_t column, Date lo, Date hi) &&;
  Query&& WhereOverlaps(size_t column, geom::Polygon region) &&;
  Query&& WhereWithinCircle(size_t column, geom::Circle circle) &&;

  /// Opaque residual predicate (always evaluated after the access path).
  Query&& Where(exec::ExprPtr predicate) &&;

  /// Spatial join with another table on shape columns. The optimizer
  /// chooses indexed nested loops (broadcasting this query's — the
  /// outer's — rows) or a redeclustered PBSM join, by estimated cost.
  Query&& SpatialJoinWith(const ParallelTable* right, size_t left_column,
                          size_t right_column) &&;

  /// Projection applied after predicates (and after any join, over the
  /// concatenated tuple).
  Query&& Select(std::vector<exec::ExprPtr> exprs) &&;

  /// Two-phase grouped aggregation (terminal: replaces projection).
  Query&& GroupBy(std::vector<size_t> group_cols,
                  std::vector<exec::AggregatePtr> aggs) &&;

  Query&& OrderBy(size_t column, bool ascending = true) &&;

  /// The physical plan the optimizer chose, as text — inspect before
  /// running.
  std::string Explain() const;

  /// Optimizes, executes, and gathers the result at the coordinator.
  StatusOr<exec::TupleVec> Run(QueryCoordinator* coord) &&;

 private:
  Query() = default;

  struct SargPredicate {
    enum Kind {
      kStringEq,
      kIntEq,
      kIntRange,
      kOverlaps,
      kWithinCircle,
    } kind = kStringEq;
    size_t column = 0;
    std::string string_value;
    int64_t lo = 0, hi = 0;
    bool is_date = false;  // lo/hi are days-since-epoch
    std::optional<geom::Polygon> region;
    std::optional<geom::Circle> circle;

    /// Rough selectivity guess used for access-path ranking.
    double EstimatedSelectivity(const ParallelTable& table) const;
    exec::ExprPtr AsExpr() const;
  };

  struct AccessPath {
    enum Kind { kSeqScan, kBTreeProbe, kRTreeProbe } kind = kSeqScan;
    const SargPredicate* driver = nullptr;  // predicate the index serves
    double estimated_cost = 0.0;            // modeled seconds, coarse
  };

  struct JoinChoice {
    enum Algo { kNone, kBroadcastIndexNL, kPbsm } algo = kNone;
    const ParallelTable* right = nullptr;
    size_t left_column = 0;
    size_t right_column = 0;
    double estimated_rows_out = 0.0;
  };

  AccessPath ChooseAccessPath() const;
  JoinChoice ChooseJoin(double outer_rows) const;
  double EstimatedDriverRows() const;

  StatusOr<PerNode> ExecuteAccess(QueryCoordinator* coord,
                                  const AccessPath& path) const;
  StatusOr<PerNode> ExecuteJoin(QueryCoordinator* coord, const JoinChoice& jc,
                                const PerNode& outer) const;

  const ParallelTable* table_ = nullptr;
  std::vector<SargPredicate> sargs_;
  std::vector<exec::ExprPtr> residuals_;
  JoinChoice join_;
  std::vector<exec::ExprPtr> projection_;
  std::vector<size_t> group_cols_;
  std::vector<exec::AggregatePtr> aggregates_;
  bool has_aggregate_ = false;
  std::optional<exec::SortKey> order_by_;
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_QUERY_BUILDER_H_
