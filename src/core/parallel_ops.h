#ifndef PARADISE_CORE_PARALLEL_OPS_H_
#define PARADISE_CORE_PARALLEL_OPS_H_

#include <memory>
#include <vector>

#include "core/coordinator.h"
#include "core/pull.h"
#include "core/spatial_grid.h"
#include "core/table.h"
#include "exec/aggregate.h"
#include "exec/exec_context.h"
#include "exec/expr.h"
#include "exec/operators.h"
#include "exec/spatial_join.h"
#include "opt/join_advisor.h"

namespace paradise::core {

/// Tuples held per node between phases (the materialized edges of the
/// operator tree).
using PerNode = std::vector<exec::TupleVec>;

/// Execution context bound to one node, owning its pull source.
struct NodeExecContext {
  std::unique_ptr<PullTileSource> pull;
  exec::ExecContext ctx;
};
NodeExecContext MakeNodeContext(Cluster* cluster, int node);

/// Context for coordinator-side sequential operators.
NodeExecContext MakeCoordinatorContext(Cluster* cluster);

/// Full-fragment parallel scan with optional predicate and projection.
/// Replicated copies are skipped (each logical tuple is seen once, at its
/// primary node).
StatusOr<PerNode> ParallelScan(QueryCoordinator* coord,
                               const ParallelTable& table,
                               const exec::ExprPtr& predicate,
                               const std::vector<exec::ExprPtr>& projection);

/// As ParallelScan but keeps replicated copies in place — the input shape
/// a co-partitioned spatial join wants (its duplicate elimination assumes
/// every node holds all features overlapping its tiles).
StatusOr<PerNode> ParallelScanAll(QueryCoordinator* coord,
                                  const ParallelTable& table,
                                  const exec::ExprPtr& predicate);

/// Spatial indexed selection: probe each fragment's R*-tree with the
/// query MBR, fetch candidate rows, apply the exact predicate, and keep
/// primary copies only.
StatusOr<PerNode> ParallelSpatialIndexSelect(QueryCoordinator* coord,
                                             const ParallelTable& table,
                                             const geom::Box& query_mbr,
                                             const exec::ExprPtr& exact_pred);

/// Scalar indexed selection (B+-tree equality) on a string column.
StatusOr<PerNode> ParallelIndexSelectString(QueryCoordinator* coord,
                                            const ParallelTable& table,
                                            size_t column,
                                            const std::string& key);

/// Scalar indexed selection (B+-tree range) on an int/date column.
StatusOr<PerNode> ParallelIndexSelectIntRange(QueryCoordinator* coord,
                                              const ParallelTable& table,
                                              size_t column, int64_t lo,
                                              int64_t hi);

/// Redistribution (split-stream) phase: each tuple of `input` is sent to
/// the node(s) `route` names; network costs are charged on both ends.
/// Runs as a local partition step (every node bins its own tuples per
/// destination, in parallel) followed by a single merge/charge step after
/// the phase barrier that performs the deliveries and receiver-side
/// charges — see QueryCoordinator::RunPhase's concurrency contract.
StatusOr<PerNode> Redistribute(
    QueryCoordinator* coord, const PerNode& input,
    const std::function<void(const exec::Tuple&, std::vector<uint32_t>*)>&
        route);

/// Replicates every tuple to all nodes (small-outer broadcast join).
StatusOr<PerNode> Broadcast(QueryCoordinator* coord, const PerNode& input);

/// Collects all per-node results at the coordinator (the result pipeline
/// back to the client).
StatusOr<exec::TupleVec> Gather(QueryCoordinator* coord, const PerNode& input);

/// What the adaptive join mode chose and observed for one query — the
/// advisor-visibility record benches surface (predicted vs observed
/// modeled seconds, tuned-grid use).
struct AdaptiveJoinReport {
  opt::JoinFeatures features;
  opt::JoinDecision decision;
  /// True when the partition tuner supplied a kAdaptive cell grid.
  bool used_tuned_grid = false;
  /// The tuner's predicted max/mean partition load (0 when untuned).
  double predicted_skew = 0.0;
  /// Modeled seconds of the join phase that actually ran (what gets
  /// recorded into the advisor's feedback store).
  double observed_seconds = 0.0;
  /// Grid resolution the executed PBSM used (0 for index nested loops).
  size_t cells_per_axis = 0;
};

struct ParallelSpatialJoinOptions {
  uint32_t tiles_per_axis = SpatialGrid::kDefaultTilesPerAxis;
  exec::PbsmOptions pbsm;
  /// When both inputs are already declustered on the same grid, phase one
  /// (redistribution) is skipped for them (Section 2.7.2).
  bool left_predeclustered = false;
  bool right_predeclustered = false;
  /// The grid to route and duplicate-eliminate on. Predeclustered joins
  /// MUST pass their table's grid so migration reassignments line up;
  /// when null, the join asks the cluster's TopologyManager for a
  /// routing grid (base hash over the current nodes, carrying the
  /// canonical table's reassignments when the geometry matches, dead
  /// nodes rehashed) instead of deriving liveness onto a local copy.
  const SpatialGrid* routing_grid = nullptr;
  /// Run the two-layer class mini-join plan (kTwoLayer tables): each node
  /// joins only its owned tiles' class pairs via exec::TwoLayerSpatialJoin
  /// — no reference-point duplicate elimination anywhere (the per-node
  /// dedup_tests/dedup_dropped counters stay 0) and no cross-node result
  /// filter. Results are bit-identical to the legacy replicate-and-dedup
  /// path on the same grid. Two-layer joins always run the partition plan;
  /// an adaptive decision for index nested loops falls back to it.
  bool two_layer = false;

  // -- Adaptive mode (off by default: the fixed path is the
  //    paper-reproduction ablation control and stays bit-identical) ------

  /// Consult the cluster catalog's sampled statistics and the
  /// cost-feedback JoinAdvisor: pick PBSM vs index nested loops and the
  /// grid per query, run a tuner-built kAdaptive cell map when stats
  /// exist, and record the observed outcome back into the advisor at the
  /// phase merge (a deterministic point — advice stays bit-identical at
  /// any PARADISE_THREADS).
  bool adaptive = false;
  /// Catalog stats keys for the inputs (usually the base table names).
  /// Empty or invalidated stats degrade to input-cardinality features
  /// and the untuned grid.
  std::string left_stats_table;
  std::string right_stats_table;
  /// Skew bound handed to the partition tuner.
  double tuner_skew_target = 1.5;
  /// Forces a decision instead of asking the advisor (benches use this to
  /// seed the feedback store with both methods); the outcome is still
  /// recorded. Not owned.
  const opt::JoinDecision* override_decision = nullptr;
  /// When non-null, filled with what adaptive mode chose and observed.
  AdaptiveJoinReport* report = nullptr;
};

/// Parallel spatial join (Section 2.7.2): spatially redecluster both
/// inputs with replication, run PBSM per node, and eliminate
/// replication-induced duplicates with the reference-point rule.
StatusOr<PerNode> ParallelSpatialJoin(QueryCoordinator* coord,
                                      const PerNode& left, size_t left_col,
                                      const PerNode& right, size_t right_col,
                                      const geom::Box& universe,
                                      const ParallelSpatialJoinOptions& opts);

/// Two-phase parallel aggregation (Section 2.4): local aggregation on
/// every node, partials shipped to the single global aggregate operator at
/// the coordinator (a deliberately sequential step, as in the paper).
StatusOr<exec::TupleVec> ParallelAggregate(
    QueryCoordinator* coord, const PerNode& input,
    const std::vector<size_t>& group_cols,
    const std::vector<exec::AggregatePtr>& aggs);

/// Query 12's plan (Fig. 3.1): for every point tuple in `points`, find the
/// closest feature among `features` using:
///   1. spatial redeclustering of both inputs on one grid,
///   2. an on-the-fly local R*-tree per node on the features,
///   3. the *spatial semi-join*: if the largest circle around the point
///      inside its tile proves the closest feature is local, the point
///      stays local; otherwise it is replicated to all nodes,
///   4. the join-with-aggregate operator (expanding-circle probes),
///   5. the single global aggregate operator merging per-node candidates.
/// Output tuples: [point, closest shape, distance].
struct ClosestJoinStats {
  int64_t local_points = 0;       // resolved by the semi-join locally
  int64_t replicated_points = 0;  // had to visit every node
};
StatusOr<exec::TupleVec> SpatialJoinWithClosest(
    QueryCoordinator* coord, const PerNode& points, size_t point_col,
    const PerNode& features, size_t shape_col, const geom::Box& universe,
    uint32_t tiles_per_axis = SpatialGrid::kDefaultTilesPerAxis,
    ClosestJoinStats* stats = nullptr);

/// Copy-on-insert into a permanent relation (Sections 2.5.2): stores
/// result tuples round-robin over the *flattened* result (tuple g lands
/// on node g % N, so output fragments differ in cardinality by at most
/// one) into fresh fragments, deep-copying raster attributes to the
/// destination node (pulling tiles if remote). Partitioning runs in
/// parallel; transfers and deep copies happen in the post-barrier merge
/// step.
StatusOr<std::unique_ptr<ParallelTable>> StoreResult(
    QueryCoordinator* coord, const PerNode& input, catalog::TableDef def);

}  // namespace paradise::core

#endif  // PARADISE_CORE_PARALLEL_OPS_H_
