#include "core/pull.h"

#include "common/logging.h"

namespace paradise::core {

StatusOr<ByteBuffer> PullTileSource::ReadTile(const array::ArrayHandle& handle,
                                              uint32_t tile_index) {
  uint32_t owner = handle.TileOwner(tile_index);
  Node& owner_node = cluster_->node(static_cast<int>(owner));

  if (owner == consumer_node_) {
    // Local after all: read directly.
    return owner_node.local_tile_source()->ReadTile(handle, tile_index);
  }

  // Start the pull operator on the owner.
  owner_node.clock()->ChargeCpu(kPullOperatorStartupOps);
  // Small request message from consumer to owner.
  cluster_->ChargeTransfer(consumer_node_, owner, 64);

  // The owner reads + decompresses the tile. LocalTileSource charges the
  // owner's disk (random, since pulled tiles break the sequential layout)
  // and decompression CPU through the owner's clock.
  PARADISE_ASSIGN_OR_RETURN(
      ByteBuffer tile,
      owner_node.local_tile_source()->ReadTile(handle, tile_index));

  // Ship the raw tile to the consumer.
  cluster_->ChargeTransfer(owner, consumer_node_,
                           static_cast<int64_t>(tile.size()));
  ++tiles_pulled_;
  bytes_pulled_ += static_cast<int64_t>(tile.size());
  return tile;
}

}  // namespace paradise::core
