#ifndef PARADISE_CORE_CLUSTER_H_
#define PARADISE_CORE_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "array/chunked_array.h"
#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "exec/exec_context.h"
#include "opt/join_advisor.h"
#include "sim/cost_model.h"
#include "sim/fault_injector.h"
#include "sim/node_clock.h"
#include "storage/buffer_pool.h"
#include "storage/disk_volume.h"
#include "storage/large_object.h"
#include "storage/recovery.h"
#include "storage/transaction.h"
#include "storage/wal.h"

namespace paradise::core {

class TopologyManager;
class WorkloadSession;

/// One data server (Section 2.2): its own disks, buffer pool, large-object
/// stores, and virtual clock. Table fragments and raster tiles live here;
/// operators run "on" a node by charging its clock.
class Node {
 public:
  Node(uint32_t id, size_t buffer_pool_frames, int data_volumes,
       int pool_shards = 0);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  uint32_t id() const { return id_; }
  sim::NodeClock* clock() { return &clock_; }
  storage::BufferPool* pool() { return pool_.get(); }

  /// Permanent storage for base-table tiles/large attributes.
  storage::LargeObjectStore* lob_store() { return lob_store_.get(); }
  /// Per-query temporary storage (deleted between queries conceptually).
  storage::LargeObjectStore* temp_store() { return temp_store_.get(); }

  storage::DiskVolume* data_volume(int i) { return volumes_[i].get(); }
  int num_data_volumes() const { return static_cast<int>(volumes_.size()); }

  /// Reads tiles stored on this node, charging this node's clock.
  array::LocalTileSource* local_tile_source() { return local_source_.get(); }
  /// Same, for temporary (mid-query) arrays.
  array::LocalTileSource* temp_tile_source() { return temp_source_.get(); }

  /// This node's WAL, on its dedicated log disk (charges this node's
  /// clock). Table fragments log through it so a crashed node can be
  /// recovered mid-query.
  storage::LogManager* log() { return log_.get(); }
  storage::TransactionManager* txn_manager() { return txn_manager_.get(); }

  /// Wires (or unwires, with nullptr) a fault injector into every volume.
  void SetFaultInjector(sim::FaultInjector* injector);

 private:
  const uint32_t id_;
  sim::NodeClock clock_;
  std::vector<std::unique_ptr<storage::DiskVolume>> volumes_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::LargeObjectStore> lob_store_;
  std::unique_ptr<storage::LargeObjectStore> temp_store_;
  std::unique_ptr<array::LocalTileSource> local_source_;
  std::unique_ptr<array::LocalTileSource> temp_source_;
  std::unique_ptr<storage::LogManager> log_;
  std::unique_ptr<storage::TransactionManager> txn_manager_;
};

/// The simulated shared-nothing cluster plus the coordinator's clock. The
/// paper's testbed: nodes with 4 data disks + 1 log disk each, linked by
/// switched 100 Mbit Ethernet — all folded into the CostModel.
class Cluster {
 public:
  struct Options {
    /// 32 MB buffer pool per node, as configured in Section 3.2.
    size_t buffer_pool_frames = (32 << 20) / storage::kPageSize;
    int data_volumes_per_node = 4;
    /// Buffer-pool shards per node; 0 = auto (PARADISE_POOL_SHARDS env or
    /// 2 x hardware_concurrency, power of two). Benches force this to
    /// compare contention profiles.
    int pool_shards = 0;
  };

  explicit Cluster(int num_nodes);
  Cluster(int num_nodes, Options options);
  ~Cluster();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  Node& node(int i) { return *nodes_[i]; }
  const sim::CostModel& cost_model() const { return cost_model_; }
  sim::CostModel* mutable_cost_model() { return &cost_model_; }

  sim::NodeClock* coordinator_clock() { return &coordinator_clock_; }

  /// Charges a tuple batch transfer of `bytes` from node `from` to node
  /// `to` (sender and receiver links both carry it; messages are charged
  /// per 8 KB batch). `from == to` is free (shared memory transport).
  /// With a fault injector wired, a batch may be dropped (sender waits out
  /// the ack timeout, both links carry the retransmission) or duplicated
  /// (receiver pays to receive and discard the extra copy).
  void ChargeTransfer(uint32_t from, uint32_t to, int64_t bytes);

  /// Wires a fault injector into every node's volumes and this cluster's
  /// transfer path. Pass nullptr to unwire. Configure the injector before
  /// wiring; ownership stays with the caller.
  void SetFaultInjector(sim::FaultInjector* injector);
  sim::FaultInjector* fault_injector() const { return fault_injector_; }

  /// Retry policy applied by every node's buffer pool and by the
  /// coordinator's failure protocol.
  void set_retry_policy(const sim::RetryPolicy& policy);
  const sim::RetryPolicy& retry_policy() const { return retry_policy_; }

  // -- Node failure -------------------------------------------------------

  bool alive(int i) const { return alive_[static_cast<size_t>(i)]; }
  int num_alive() const;
  /// Ids of the nodes currently alive, ascending.
  std::vector<int> alive_node_ids() const;

  /// Simulated node crash: all volatile state (buffer pool) is lost and
  /// the log is truncated to its durable prefix. The volumes survive.
  void CrashNode(int i);

  /// ARIES restart on a crashed node: reads the durable log, redoes
  /// history, rolls back losers. All I/O is charged to the node's clock.
  Status RecoverNode(int i,
                     storage::RecoveryManager::RecoveryStats* stats = nullptr);

  /// Declares a node permanently failed; RunPhase skips dead nodes.
  void MarkNodeDead(int i);

  /// Reinstates a node previously removed/marked dead (rolling-restart
  /// rejoin). The node comes back cold; whoever removed it is
  /// responsible for migrating data back onto it.
  void MarkNodeAlive(int i);

  // -- Elastic membership -------------------------------------------------

  /// Appends a new empty node (same per-node configuration as the rest
  /// of the cluster) and returns its id. Existing Node references stay
  /// valid. Callers normally go through TopologyManager::AddNode, which
  /// also extends table grids and plans rebalancing migration.
  int AddNode();

  /// The epoch-versioned membership/migration layer (always present).
  TopologyManager* topology() { return topology_.get(); }

  /// Invoked by the coordinator after a permanent node loss, before the
  /// query resumes: redeclusters the dead node's table fragments over the
  /// survivors (installed by whoever owns the tables).
  using NodeLossHandler = std::function<Status(int dead_node)>;
  void set_node_loss_handler(NodeLossHandler handler) {
    node_loss_handler_ = std::move(handler);
  }
  const NodeLossHandler& node_loss_handler() const {
    return node_loss_handler_;
  }

  /// Flushes every node's buffer pool and resets all clocks — the paper's
  /// cold-buffer-pool protocol between benchmark queries.
  void ResetForQuery();

  /// Sum of all node phase clocks... see QueryCoordinator for phase logic.
  std::vector<sim::ResourceUsage> EndPhaseAllNodes();

  /// The worker pool phase fragments execute on (lazily created, sized by
  /// PARADISE_THREADS or the hardware concurrency). Modeled time comes
  /// from the virtual clocks, so the pool size changes wall-clock only.
  common::ThreadPool* thread_pool();

  /// Rebuilds the pool with exactly `n` threads (tests pin 1 thread to
  /// debug, then N to check the executor is deterministic).
  void SetNumThreads(int n);

  /// The cluster's system catalog: table stats published at load time
  /// (ParallelTable::Load) and invalidated on mutation / redecluster /
  /// migration cutover. Driven from the coordinator thread, like the
  /// topology manager.
  catalog::Catalog* catalog() { return &catalog_; }

  /// The cost-feedback join chooser fed by ParallelSpatialJoin's adaptive
  /// mode. Observations are recorded at deterministic merge points, so
  /// its advice is bit-identical at any PARADISE_THREADS.
  opt::JoinAdvisor* join_advisor() { return &join_advisor_; }

  /// Attaches (or, with nullptr, detaches) the admission/scheduling
  /// session for a concurrent workload. While attached, QueryCoordinators
  /// constructed on bound stream threads run in workload mode. Ownership
  /// stays with the caller (the workload driver).
  void set_workload_session(WorkloadSession* session) {
    workload_session_ = session;
  }
  WorkloadSession* workload_session() const { return workload_session_; }

 private:
  sim::CostModel cost_model_;
  Options options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<bool> alive_;
  std::unique_ptr<TopologyManager> topology_;
  sim::NodeClock coordinator_clock_;
  std::unique_ptr<common::ThreadPool> thread_pool_;

  catalog::Catalog catalog_;
  opt::JoinAdvisor join_advisor_;
  sim::FaultInjector* fault_injector_ = nullptr;
  sim::RetryPolicy retry_policy_;
  NodeLossHandler node_loss_handler_;
  WorkloadSession* workload_session_ = nullptr;
  // Per-(from, to) link batch ordinals keying transfer fault decisions.
  std::mutex transfer_mu_;
  std::unordered_map<uint64_t, int64_t> transfer_ordinals_;
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_CLUSTER_H_
