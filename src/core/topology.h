#ifndef PARADISE_CORE_TOPOLOGY_H_
#define PARADISE_CORE_TOPOLOGY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/spatial_grid.h"
#include "geom/box.h"

namespace paradise::core {

class Cluster;
class ParallelTable;

/// Effective membership state of one node as the topology layer sees it.
enum class NodeTopologyState : uint8_t {
  kActive = 0,   // serves queries and owns tiles
  kDraining,     // still alive, but its tiles are being migrated away
  kRemoved,      // planned scale-in completed; may be reinstated
  kDead,         // crashed permanently; salvaged, never reinstated
};

/// The cluster-owned, epoch-versioned membership and online-rebalancing
/// layer. Every topology change — node join, drain, removal, crash,
/// migration cutover — bumps a single monotonically increasing epoch that
/// is mirrored into every registered table's SpatialGrid. In-flight
/// queries pin the epoch they admitted under (QueryCoordinator::BeginQuery)
/// so physical garbage collection of migrated-away rows is deferred until
/// no reader of an older assignment remains; new admissions see the
/// post-change assignment immediately.
///
/// Tile migration is *online and throttled*: moves queue on one stream per
/// source node, and a token bucket (refilled in modeled time, slowed by
/// the workload session's admission level) paces how many bytes each pump
/// step may ship, so foreground p99 degrades gracefully instead of
/// stalling behind a bulk copy. Moves only execute while the session is
/// quiescent (no query mid-flight), which keeps the whole protocol
/// single-threaded and bit-identical at any PARADISE_THREADS.
///
/// Crash-safety (composed with sim::FaultInjector): each executed move
/// consumes one global ordinal; a scheduled or chaos-drawn
/// MigrationCrashEvent fires after the staged runs landed durably on the
/// target but before cutover. The staged copies are rolled back, the
/// victim crashes, and the move either requeues (transient — the retry's
/// dedup pass reclaims whatever survived) or degrades into a loss
/// migration (permanent). Either way every tile stays exactly-once owned.
class TopologyManager {
 public:
  /// Migration pacing. Defaults model a background stream shipping 8 MB/s
  /// of modeled time when the cluster is idle, halved per admitted query.
  struct Throttle {
    double bytes_per_second = 8.0 * 1000 * 1000;
    /// Refill divisor per concurrently admitted query (1 + c * K).
    double contention_slowdown = 1.0;
    int64_t max_burst_bytes = 4 << 20;
  };

  struct Stats {
    int64_t tiles_moved = 0;
    int64_t stripe_moves = 0;
    int64_t migration_bytes = 0;
    int64_t rows_shipped = 0;
    int64_t rows_deduped = 0;
    int64_t rollbacks = 0;       // staged moves undone by a crash
    int64_t resumed_moves = 0;   // moves requeued after a transient crash
    int64_t gc_rows = 0;         // orphaned source rows physically deleted
    int64_t cutovers_deferred = 0;  // pump steps skipped for live queries
    int64_t cache_invalidations = 0;
  };

  explicit TopologyManager(Cluster* cluster);

  TopologyManager(const TopologyManager&) = delete;
  TopologyManager& operator=(const TopologyManager&) = delete;

  // -- Table registry -----------------------------------------------------

  /// Registers a table for topology maintenance (grid epoch mirroring,
  /// migration, salvage on loss). All registered *spatial* tables must
  /// share the first one's universe and tiles-per-axis so tile ids are
  /// globally comparable; the first spatial table's grid is the canonical
  /// ownership map. Non-spatial tables are striped off on drain only.
  void RegisterTable(ParallelTable* table);
  /// Must be called before the table is destroyed (table owners outlive
  /// neither the cluster nor pending migration state referencing them).
  void UnregisterTable(ParallelTable* table);

  // -- Planned membership changes -----------------------------------------

  /// Scale-out: appends a new empty node to the cluster, extends every
  /// registered grid's routable domain, and queues a fair share of tiles
  /// (num_tiles / num_active, taken from the most-loaded donors) to
  /// migrate onto it. Returns the new node id.
  int AddNode();

  /// Planned scale-in, phase 1: queues migration of every tile the node
  /// owns (round-robin over the remaining active nodes) and, for each
  /// registered non-spatial table, stripes its fragment over them. The
  /// node keeps serving until each tile's last run lands elsewhere.
  void DrainNode(int node);

  /// Planned scale-in, phase 2: requires the drain to have completed
  /// (no owned tiles, no pending moves). Force-collects deferred GC on
  /// the node and marks it dead to the scheduler.
  void RemoveNode(int node);

  /// Rolling-restart rejoin of a previously Removed node: marks it alive
  /// and queues move-back of every tile whose base owner it is.
  void ReinstateNode(int node);

  /// Flash-crowd relief: samples per-tile access weight (R*-tree
  /// candidate counts across registered spatial tables) on `source` and
  /// queues its `k` hottest tiles to the least-loaded other active nodes.
  /// Returns the number of moves planned.
  int ShedHotTiles(int source, int k);

  // -- Crash-driven changes -----------------------------------------------

  /// A permanent node loss expressed as a degenerate topology change: a
  /// zero-throttle migration whose source is dead. Marks the node dead in
  /// the topology (dropping/retargeting pending moves), salvages the
  /// table's fragment over the survivors, and invalidates cached results
  /// that depended on the table. Works for unregistered tables too (the
  /// coordinator's node-loss handler owns which tables to repair).
  Status MigrateForLoss(ParallelTable* table, int dead_node);

  /// Idempotent bookkeeping half of a permanent loss (no data movement):
  /// state -> kDead, epoch bump, pending moves sourced at the node are
  /// dropped and moves targeting it retargeted onto active nodes.
  void OnNodeDead(int node);

  // -- Online migration pump ----------------------------------------------

  /// Advances every migration stream to modeled time `now_seconds`:
  /// refills the token buckets (slowed by the session's admission level)
  /// and, if no query is mid-flight, executes queued moves while budget
  /// lasts. Also runs deferred GC for epochs no query pins any more.
  /// Call between queries / at scheduling points; single-threaded.
  Status PumpMigration(double now_seconds);

  /// Runs the pump with unbounded budget until every stream is empty.
  /// Requires quiescence.
  Status DrainMigration(double now_seconds);

  bool migration_idle() const;
  /// Queued moves across all streams.
  int64_t pending_moves() const;

  // -- Epoch pinning (readers) --------------------------------------------

  uint64_t epoch() const { return epoch_; }

  /// Pins the current epoch (query admission); GC of rows orphaned by
  /// cutovers at later epochs is deferred until the pin is released.
  /// Thread-safe (stream threads admit concurrently).
  uint64_t PinEpoch();
  void UnpinEpoch(uint64_t epoch);

  // -- Routing ------------------------------------------------------------

  /// A compute-placement grid for parallel operators (joins build one per
  /// query): base-hashed over the current node count, carrying the
  /// canonical table grid's reassignments when the geometry matches
  /// (same universe and tiles-per-axis), with every non-alive node
  /// dead-marked — exactly the grid operators used to derive locally.
  SpatialGrid MakeRoutingGrid(const geom::Box& universe,
                              uint32_t tiles_per_axis) const;

  NodeTopologyState node_state(int node) const;
  const Throttle& throttle() const { return throttle_; }
  void set_throttle(const Throttle& t) { throttle_ = t; }
  const Stats& stats() const { return stats_; }

 private:
  /// One queued tile or stripe move.
  struct Move {
    bool spatial = true;
    uint32_t tile = 0;            // spatial moves (all spatial tables)
    ParallelTable* table = nullptr;  // stripe moves (one table)
    size_t stripe_index = 0;
    size_t stripe_count = 1;
    int source = -1;
    int target = -1;
  };

  /// Per-source migration stream with its token bucket.
  struct Stream {
    std::deque<Move> queue;
    double budget_bytes = 0.0;  // starts full (max_burst)
    bool budget_init = false;
  };

  /// A cutover's orphaned source rows, deletable once no pin predates
  /// `epoch`.
  struct GcEntry {
    ParallelTable* table = nullptr;
    int node = -1;
    std::vector<uint64_t> rows;
    uint64_t epoch = 0;
  };

  struct MoveOutcome {
    int64_t bytes = 0;
    bool crashed = false;
  };

  NodeTopologyState EffectiveState(int node) const;
  void EnsureStates();
  /// Bumps the epoch and mirrors it into every registered spatial grid.
  void BumpEpoch();
  SpatialGrid* canonical_grid() const;
  std::vector<uint32_t> OwnedTiles(int node) const;
  std::vector<int> ActiveNodes() const;
  void QueueMove(Move move, bool front = false);

  StatusOr<MoveOutcome> ExecuteMove(const Move& move,
                                    std::set<int>* touched_nodes);
  void MaybeCollectGarbage(std::set<int>* touched_nodes);
  void UpdateBackgroundLoad();

  /// After a loss rehash, tiles of the dead node may have landed on a
  /// *draining* node (the grid's dead-rehash only knows liveness, not
  /// drain intent). Queue drain moves for any such tiles so the drain
  /// still converges to zero owned tiles.
  void RequeueDrainingTiles();

  Cluster* const cluster_;
  Throttle throttle_;
  Stats stats_;

  std::vector<ParallelTable*> tables_;        // registration order
  std::vector<ParallelTable*> spatial_tables_;  // canonical first
  std::vector<NodeTopologyState> states_;

  uint64_t epoch_ = 0;
  std::map<int, Stream> streams_;  // keyed by source node, ascending
  std::deque<GcEntry> gc_;         // epoch-ordered
  double last_pump_seconds_ = 0.0;
  int64_t migration_ordinal_ = 0;  // global executed-move counter

  mutable std::mutex pins_mu_;
  std::multiset<uint64_t> pins_;
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_TOPOLOGY_H_
