#ifndef PARADISE_CORE_PULL_H_
#define PARADISE_CORE_PULL_H_

#include "array/chunked_array.h"
#include "core/cluster.h"

namespace paradise::core {

/// The pull model for large attributes (Section 2.5.2): when an operator
/// on `consumer_node` invokes a method on an array stored elsewhere, a
/// pull operator is started on the owner node that reads (and
/// decompresses) only the needed tiles and ships them over.
///
/// Costs charged per pulled tile:
///   - owner node: operator start-up CPU, the tile's disk I/O (random
///     seeks — pulls do not enjoy sequential layout), decompression CPU;
///   - both link endpoints: the tile bytes plus message latency.
class PullTileSource : public array::TileSource {
 public:
  PullTileSource(Cluster* cluster, uint32_t consumer_node)
      : cluster_(cluster), consumer_node_(consumer_node) {}

  StatusOr<ByteBuffer> ReadTile(const array::ArrayHandle& handle,
                                uint32_t tile_index) override;

  /// Number of tiles pulled through this source (for tests/ablation).
  int64_t tiles_pulled() const { return tiles_pulled_; }
  int64_t bytes_pulled() const { return bytes_pulled_; }

 private:
  Cluster* const cluster_;
  const uint32_t consumer_node_;
  int64_t tiles_pulled_ = 0;
  int64_t bytes_pulled_ = 0;
};

/// CPU cost of starting a pull operator on the remote node; pulls are
/// "expensive because each pull requires that a separate operator be
/// started on the remote node".
inline constexpr double kPullOperatorStartupOps = 40000;

}  // namespace paradise::core

#endif  // PARADISE_CORE_PULL_H_
