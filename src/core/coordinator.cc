#include "core/coordinator.h"

#include <algorithm>

namespace paradise::core {

void QueryCoordinator::BeginQuery() {
  cluster_->ResetForQuery();
  query_seconds_ = 0.0;
  phases_.clear();
}

Status QueryCoordinator::RunPhase(
    const std::string& name, const std::function<Status(int node)>& work) {
  // Nodes execute their fragments. (On this host they run back-to-back;
  // time is taken from the per-node clocks, not the wall.)
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    PARADISE_RETURN_IF_ERROR(work(n));
  }
  PhaseReport report;
  report.name = name;
  const sim::CostModel& model = cluster_->cost_model();
  for (sim::ResourceUsage& usage : cluster_->EndPhaseAllNodes()) {
    double s = model.Seconds(usage);
    report.max_node_seconds = std::max(report.max_node_seconds, s);
    report.total_node_seconds += s;
  }
  report.seconds = report.max_node_seconds;
  query_seconds_ += report.seconds;
  phases_.push_back(std::move(report));
  return Status::OK();
}

Status QueryCoordinator::RunSequential(const std::string& name,
                                       const std::function<Status()>& work) {
  PARADISE_RETURN_IF_ERROR(work());
  PhaseReport report;
  report.name = name;
  report.sequential = true;
  const sim::CostModel& model = cluster_->cost_model();
  // The sequential operator may have pulled data from nodes: their phase
  // usage counts toward this phase too (they serve tiles while the
  // coordinator-side operator runs).
  double max_node = 0.0, total = 0.0;
  for (sim::ResourceUsage& usage : cluster_->EndPhaseAllNodes()) {
    double s = model.Seconds(usage);
    max_node = std::max(max_node, s);
    total += s;
  }
  double seq = model.Seconds(cluster_->coordinator_clock()->EndPhase());
  report.max_node_seconds = max_node;
  report.total_node_seconds = total + seq;
  report.seconds = seq + max_node;
  query_seconds_ += report.seconds;
  phases_.push_back(std::move(report));
  return Status::OK();
}

}  // namespace paradise::core
