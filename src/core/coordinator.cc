#include "core/coordinator.h"

#include <algorithm>

namespace paradise::core {

void QueryCoordinator::BeginQuery() {
  cluster_->ResetForQuery();
  query_seconds_ = 0.0;
  phases_.clear();
}

Status QueryCoordinator::RunPhase(const std::string& name,
                                  const std::function<Status(int node)>& work,
                                  const std::function<Status()>& merge) {
  // Every node executes its fragment on a worker thread; ParallelFor is
  // the phase barrier. Time is taken from the per-node virtual clocks,
  // not the wall, so the thread count affects wall-clock only.
  const int num_nodes = cluster_->num_nodes();
  std::vector<Status> statuses(num_nodes);
  cluster_->thread_pool()->ParallelFor(
      num_nodes, [&](int n) { statuses[n] = work(n); });
  // Report the lowest failed node, independent of completion order.
  for (Status& s : statuses) {
    PARADISE_RETURN_IF_ERROR(std::move(s));
  }
  // Cross-node effects (exchange deliveries, receiver-side charges) run
  // single-threaded after the barrier, inside the same phase.
  if (merge != nullptr) {
    PARADISE_RETURN_IF_ERROR(merge());
  }
  PhaseReport report;
  report.name = name;
  const sim::CostModel& model = cluster_->cost_model();
  for (sim::ResourceUsage& usage : cluster_->EndPhaseAllNodes()) {
    double s = model.Seconds(usage);
    report.max_node_seconds = std::max(report.max_node_seconds, s);
    report.total_node_seconds += s;
  }
  report.seconds = report.max_node_seconds;
  query_seconds_ += report.seconds;
  phases_.push_back(std::move(report));
  return Status::OK();
}

Status QueryCoordinator::RunSequential(const std::string& name,
                                       const std::function<Status()>& work) {
  PARADISE_RETURN_IF_ERROR(work());
  PhaseReport report;
  report.name = name;
  report.sequential = true;
  const sim::CostModel& model = cluster_->cost_model();
  // The sequential operator may have pulled data from nodes: their phase
  // usage counts toward this phase too (they serve tiles while the
  // coordinator-side operator runs).
  double max_node = 0.0, total = 0.0;
  for (sim::ResourceUsage& usage : cluster_->EndPhaseAllNodes()) {
    double s = model.Seconds(usage);
    max_node = std::max(max_node, s);
    total += s;
  }
  double seq = model.Seconds(cluster_->coordinator_clock()->EndPhase());
  report.max_node_seconds = max_node;
  report.total_node_seconds = total + seq;
  report.seconds = seq + max_node;
  query_seconds_ += report.seconds;
  phases_.push_back(std::move(report));
  return Status::OK();
}

}  // namespace paradise::core
