#include "core/coordinator.h"

#include <algorithm>

namespace paradise::core {

Status QueryCoordinator::BeginQuery() {
  cluster_->ResetForQuery();
  query_seconds_ = 0.0;
  barriers_passed_ = 0;
  phases_.clear();
  // Barrier 0: a crash scheduled "at query start" fires before any phase.
  return HandleBarrierFaults();
}

void QueryCoordinator::ClosePhase(const std::string& name, bool sequential) {
  PhaseReport report;
  report.name = name;
  report.sequential = sequential;
  const sim::CostModel& model = cluster_->cost_model();
  for (sim::ResourceUsage& usage : cluster_->EndPhaseAllNodes()) {
    double s = model.Seconds(usage);
    report.max_node_seconds = std::max(report.max_node_seconds, s);
    report.total_node_seconds += s;
  }
  if (sequential) {
    // The sequential operator may have pulled data from nodes: their
    // phase usage counts toward this phase too (they serve tiles while
    // the coordinator-side operator runs).
    double seq = model.Seconds(cluster_->coordinator_clock()->EndPhase());
    report.total_node_seconds += seq;
    report.seconds = seq + report.max_node_seconds;
  } else {
    report.seconds = report.max_node_seconds;
  }
  query_seconds_ += report.seconds;
  phases_.push_back(std::move(report));
}

Status QueryCoordinator::HandleBarrierFaults() {
  const int barrier = barriers_passed_++;
  sim::FaultInjector* injector = cluster_->fault_injector();
  if (injector == nullptr) return Status::OK();
  while (auto crash = injector->TakeCrashAtBarrier(barrier)) {
    const int n = static_cast<int>(crash->node);
    if (!cluster_->alive(n)) continue;
    cluster_->CrashNode(n);
    // The coordinator notices the missed heartbeat only after the
    // detection timeout.
    cluster_->coordinator_clock()->ChargeIdle(
        retry_policy_.detect_timeout_seconds);
    if (!crash->permanent) {
      Status st = cluster_->RecoverNode(n);
      ClosePhase("recover node " + std::to_string(n), /*sequential=*/true);
      PARADISE_RETURN_IF_ERROR(std::move(st));
    } else {
      cluster_->MarkNodeDead(n);
      Status st = Status::OK();
      if (cluster_->node_loss_handler() != nullptr) {
        st = cluster_->node_loss_handler()(n);
      }
      ClosePhase("redecluster after losing node " + std::to_string(n),
                 /*sequential=*/true);
      PARADISE_RETURN_IF_ERROR(std::move(st));
    }
  }
  return Status::OK();
}

Status QueryCoordinator::RunPhase(const std::string& name,
                                  const std::function<Status(int node)>& work,
                                  const std::function<Status()>& merge) {
  // Every alive node executes its fragment on a worker thread; ParallelFor
  // is the phase barrier. Time is taken from the per-node virtual clocks,
  // not the wall, so the thread count affects wall-clock only.
  const std::vector<int> alive = cluster_->alive_node_ids();
  std::vector<Status> statuses(alive.size());
  cluster_->thread_pool()->ParallelFor(
      static_cast<int>(alive.size()),
      [&](int i) { statuses[static_cast<size_t>(i)] = work(alive[i]); });
  // Report the lowest failed node, independent of completion order.
  Status failed = Status::OK();
  for (Status& s : statuses) {
    if (failed.ok() && !s.ok()) failed = std::move(s);
  }
  // Cross-node effects (exchange deliveries, receiver-side charges) run
  // single-threaded after the barrier, inside the same phase.
  if (failed.ok() && merge != nullptr) {
    failed = merge();
  }
  ClosePhase(name, /*sequential=*/false);
  PARADISE_RETURN_IF_ERROR(std::move(failed));
  return HandleBarrierFaults();
}

Status QueryCoordinator::RunSequential(const std::string& name,
                                       const std::function<Status()>& work) {
  Status st = work();
  ClosePhase(name, /*sequential=*/true);
  PARADISE_RETURN_IF_ERROR(std::move(st));
  return HandleBarrierFaults();
}

}  // namespace paradise::core
