#include "core/coordinator.h"

#include <algorithm>
#include <utility>

#include "core/topology.h"

namespace paradise::core {

// ---------------------------------------------------------------------------
// WorkloadSession
// ---------------------------------------------------------------------------

WorkloadSession::WorkloadSession(Cluster* cluster, const Options& options)
    : cluster_(cluster), options_(options) {
  entities_.reserve(static_cast<size_t>(options_.num_streams));
  for (int s = 0; s < options_.num_streams; ++s) {
    auto e = std::make_unique<Entity>();
    e->stream = s;
    entities_.push_back(std::move(e));
  }
}

WorkloadSession::~WorkloadSession() = default;

WorkloadSession::Entity* WorkloadSession::BoundLocked() {
  auto it = bound_.find(std::this_thread::get_id());
  return it == bound_.end() ? nullptr : it->second;
}

void WorkloadSession::MaybeGrantLocked() {
  // The turnstile invariant: a stream thread runs only while it holds the
  // grant, and a new grant is issued only once every live stream is parked
  // with its next modeled event time. The minimum (time, stream) pair goes
  // next, so execution order is a pure function of modeled time — never of
  // the wall-clock order threads happened to arrive in.
  if (registered_ < options_.num_streams) return;
  Entity* best = nullptr;
  for (const auto& e : entities_) {
    if (e->done) continue;
    if (!e->parked) return;   // a stream is still running (or binding)
    if (e->granted) return;   // a grant is already outstanding
    if (e->waiting_admission) continue;  // waits for a slot, not for time
    if (best == nullptr || e->park_time < best->park_time ||
        (e->park_time == best->park_time && e->stream < best->stream)) {
      best = e.get();
    }
  }
  if (best != nullptr) {
    best->granted = true;
    best->cv.notify_one();
  }
}

void WorkloadSession::ParkUntilGrantedLocked(
    std::unique_lock<std::mutex>& lock, Entity* e, double time) {
  e->park_time = time;
  e->parked = true;
  e->granted = false;
  MaybeGrantLocked();
  e->cv.wait(lock, [&] { return e->granted; });
  e->parked = false;
  e->granted = false;
}

void WorkloadSession::BindStream(int stream) {
  std::lock_guard<std::mutex> g(mu_);
  Entity* e = entities_[static_cast<size_t>(stream)].get();
  e->registered = true;
  ++registered_;
  bound_[std::this_thread::get_id()] = e;
}

WorkloadSession::Ticket* WorkloadSession::AwaitAdmission(
    double ready_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  Entity* e = BoundLocked();
  e->ticket = Ticket{};
  e->ticket.stream = e->stream;
  e->ticket.submit_seconds = ready_seconds;
  // Reach the submission instant in global modeled time.
  ParkUntilGrantedLocked(lock, e, ready_seconds);
  while (in_flight_ >= options_.max_concurrent) {
    // Window full: queue FIFO (= submission-time order, since the queue is
    // joined while holding the grant). A finishing query reparks us at
    // max(submit, its end time); the normal time-ordered grant then fires.
    // Re-check on wake: between the finisher freeing the slot and our
    // grant, another stream (e.g. the finisher's own next query, parked at
    // an earlier modeled instant) may have taken it.
    e->waiting_admission = true;
    e->parked = true;
    e->granted = false;
    admission_queue_.push_back(e);
    MaybeGrantLocked();
    e->cv.wait(lock, [&] { return e->granted; });
    e->parked = false;
    e->granted = false;
  }
  ++in_flight_;
  e->ticket.admit_seconds = e->park_time;
  e->ticket.now_seconds = e->park_time;
  e->ticket.seq = next_seq_++;
  e->ticket.concurrent_at_admit = in_flight_;
  return &e->ticket;
}

void WorkloadSession::FinishQuery(double query_seconds) {
  std::lock_guard<std::mutex> g(mu_);
  Entity* e = BoundLocked();
  const double end = e->ticket.admit_seconds + query_seconds;
  e->ticket.now_seconds = end;
  --in_flight_;
  if (!admission_queue_.empty()) {
    Entity* w = admission_queue_.front();
    admission_queue_.pop_front();
    w->waiting_admission = false;
    w->park_time = std::max(w->ticket.submit_seconds, end);
    // w stays parked; it is woken by a grant once it holds the global
    // minimum event time.
  }
}

void WorkloadSession::EndStream() {
  std::lock_guard<std::mutex> g(mu_);
  Entity* e = BoundLocked();
  e->done = true;
  e->parked = false;
  bound_.erase(std::this_thread::get_id());
  MaybeGrantLocked();
}

WorkloadSession::Ticket* WorkloadSession::CurrentTicket() {
  std::lock_guard<std::mutex> g(mu_);
  Entity* e = BoundLocked();
  return e == nullptr ? nullptr : &e->ticket;
}

int WorkloadSession::BeginPhaseTurn() {
  std::unique_lock<std::mutex> lock(mu_);
  Entity* e = BoundLocked();
  if (e == nullptr) return 0;
  ParkUntilGrantedLocked(lock, e, e->ticket.now_seconds);
  // Background migration streams contend for the same disks and links as
  // an admitted query would.
  return (in_flight_ > 0 ? in_flight_ - 1 : 0) + background_load_;
}

int WorkloadSession::in_flight() const {
  std::lock_guard<std::mutex> g(mu_);
  return in_flight_;
}

void WorkloadSession::RegisterScan(const std::string& key,
                                   double start_seconds, double end_seconds) {
  if (end_seconds <= start_seconds) return;
  std::lock_guard<std::mutex> g(mu_);
  scans_[key].push_back(ScanWindow{start_seconds, end_seconds});
}

int WorkloadSession::GrantScanShare(const std::string& key) {
  std::lock_guard<std::mutex> g(mu_);
  Entity* e = BoundLocked();
  if (!options_.scan_sharing || e == nullptr) return 0;
  auto it = scans_.find(key);
  if (it == scans_.end()) return 0;
  const double t = e->ticket.now_seconds;
  double best_fraction = 0.0;
  for (const ScanWindow& w : it->second) {
    if (t < w.start || t >= w.end) continue;
    best_fraction =
        std::max(best_fraction, (w.end - t) / (w.end - w.start));
  }
  int eighths = static_cast<int>(best_fraction * 8.0 + 1e-9);
  eighths = std::min(eighths, 8);
  if (eighths > 0) ++scan_attaches_;
  return eighths;
}

bool WorkloadSession::LookupCachedResult(const std::string& key,
                                         exec::TupleVec* rows,
                                         double* serve_seconds) {
  std::lock_guard<std::mutex> g(mu_);
  Entity* e = BoundLocked();
  if (!options_.result_cache || e == nullptr) return false;
  auto it = cache_.find(key);
  // Causality in modeled time: a result published after this query's
  // admission instant did not exist yet from its point of view.
  if (it == cache_.end() ||
      it->second.publish_seconds > e->ticket.admit_seconds) {
    ++cache_misses_;
    return false;
  }
  *rows = it->second.rows;
  int64_t bytes = 0;
  for (const exec::Tuple& t : *rows) {
    bytes += static_cast<int64_t>(t.WireBytes());
  }
  // Serving from cache is a key hash plus copying the rows out.
  sim::ResourceUsage u;
  u.cpu_ops = sim::cpu_cost::kHash +
              sim::cpu_cost::kPerByteCopied * static_cast<double>(bytes);
  *serve_seconds = cluster_->cost_model().Seconds(u);
  ++cache_hits_;
  return true;
}

void WorkloadSession::PublishResult(const std::string& key,
                                    std::vector<std::string> dep_tables,
                                    exec::TupleVec rows,
                                    double publish_seconds) {
  std::lock_guard<std::mutex> g(mu_);
  if (!options_.result_cache) return;
  CacheEntry& entry = cache_[key];
  entry.rows = std::move(rows);
  entry.dep_tables = std::move(dep_tables);
  entry.publish_seconds = publish_seconds;
}

void WorkloadSession::InvalidateCachedResults(const std::string& table) {
  std::lock_guard<std::mutex> g(mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    const std::vector<std::string>& deps = it->second.dep_tables;
    if (std::find(deps.begin(), deps.end(), table) != deps.end()) {
      it = cache_.erase(it);
      ++cache_invalidations_;
    } else {
      ++it;
    }
  }
}

int64_t WorkloadSession::cache_hits() const {
  std::lock_guard<std::mutex> g(mu_);
  return cache_hits_;
}
int64_t WorkloadSession::cache_misses() const {
  std::lock_guard<std::mutex> g(mu_);
  return cache_misses_;
}
int64_t WorkloadSession::cache_invalidations() const {
  std::lock_guard<std::mutex> g(mu_);
  return cache_invalidations_;
}
int64_t WorkloadSession::scan_attaches() const {
  std::lock_guard<std::mutex> g(mu_);
  return scan_attaches_;
}

// ---------------------------------------------------------------------------
// QueryCoordinator
// ---------------------------------------------------------------------------

QueryCoordinator::QueryCoordinator(Cluster* cluster)
    : cluster_(cluster),
      retry_policy_(cluster->retry_policy()),
      node_pbsm_(static_cast<size_t>(cluster->num_nodes())) {
  session_ = cluster->workload_session();
  if (session_ != nullptr) {
    ticket_ = session_->CurrentTicket();
  }
  // A coordinator on a thread that is not a bound stream runs in plain
  // single-query mode even while a session is attached elsewhere.
  if (ticket_ == nullptr) session_ = nullptr;
}

Status QueryCoordinator::BeginQuery() {
  if (session_ == nullptr) {
    cluster_->ResetForQuery();
  } else {
    // Multi-tenant mode: pools stay warm and clocks are shared, so no
    // global reset — just make sure no abandoned open-phase usage from an
    // earlier query is sitting on the clocks this query will charge.
    DiscardOpenPhase();
  }
  query_seconds_ = 0.0;
  barriers_passed_ = 0;
  phases_.clear();
  node_pbsm_.assign(node_pbsm_.size(), exec::PbsmJoinStats{});
  ended_ = false;
  // Pin the topology epoch this query admits under: rows orphaned by
  // later migration cutovers stay resolvable until the pin is released.
  if (epoch_pinned_) cluster_->topology()->UnpinEpoch(pinned_epoch_);
  pinned_epoch_ = cluster_->topology()->PinEpoch();
  epoch_pinned_ = true;
  // Barrier 0: a crash scheduled "at query start" fires before any phase.
  return HandleBarrierFaults();
}

void QueryCoordinator::EndQuery() {
  if (ended_) return;
  ended_ = true;
  if (epoch_pinned_) {
    cluster_->topology()->UnpinEpoch(pinned_epoch_);
    epoch_pinned_ = false;
  }
  DiscardOpenPhase();
}

void QueryCoordinator::DiscardOpenPhase() {
  for (int n = 0; n < cluster_->num_nodes(); ++n) {
    cluster_->node(n).clock()->DiscardPhase();
  }
  cluster_->coordinator_clock()->DiscardPhase();
}

void QueryCoordinator::ClosePhase(const std::string& name, bool sequential) {
  PhaseReport report;
  report.name = name;
  report.sequential = sequential;
  report.contention = session_ != nullptr ? phase_contention_ : 0;
  report.scan_shared_windows = phase_shared_windows_;
  phase_shared_windows_ = 0;
  const sim::CostModel& model = cluster_->cost_model();
  const ContentionModel* contention =
      session_ != nullptr ? &session_->options().contention : nullptr;
  auto seconds_of = [&](const sim::ResourceUsage& u) {
    // With zero co-runners the surcharge factors are exactly 1.0, so a
    // lone query in workload mode costs bit-identically to plain mode.
    return contention != nullptr
               ? contention->SecondsUnder(model, u, report.contention)
               : model.Seconds(u);
  };
  for (sim::ResourceUsage& usage : cluster_->EndPhaseAllNodes()) {
    double s = seconds_of(usage);
    report.max_node_seconds = std::max(report.max_node_seconds, s);
    report.total_node_seconds += s;
  }
  if (sequential) {
    // The sequential operator may have pulled data from nodes: their
    // phase usage counts toward this phase too (they serve tiles while
    // the coordinator-side operator runs).
    double seq = seconds_of(cluster_->coordinator_clock()->EndPhase());
    report.total_node_seconds += seq;
    report.seconds = seq + report.max_node_seconds;
  } else {
    report.seconds = report.max_node_seconds;
  }
  query_seconds_ += report.seconds;
  phases_.push_back(std::move(report));
  if (ticket_ != nullptr) {
    ticket_->now_seconds = ticket_->admit_seconds + query_seconds_;
  }
}

Status QueryCoordinator::HandleBarrierFaults() {
  const int barrier = barriers_passed_++;
  sim::FaultInjector* injector = cluster_->fault_injector();
  if (injector == nullptr) return Status::OK();
  while (auto crash = injector->TakeCrashAtBarrier(barrier)) {
    const int n = static_cast<int>(crash->node);
    if (!cluster_->alive(n)) continue;
    cluster_->CrashNode(n);
    // The coordinator notices the missed heartbeat only after the
    // detection timeout.
    cluster_->coordinator_clock()->ChargeIdle(
        retry_policy_.detect_timeout_seconds);
    if (!crash->permanent) {
      Status st = cluster_->RecoverNode(n);
      ClosePhase("recover node " + std::to_string(n), /*sequential=*/true);
      PARADISE_RETURN_IF_ERROR(std::move(st));
    } else {
      cluster_->MarkNodeDead(n);
      Status st = Status::OK();
      if (cluster_->node_loss_handler() != nullptr) {
        st = cluster_->node_loss_handler()(n);
      }
      ClosePhase("redecluster after losing node " + std::to_string(n),
                 /*sequential=*/true);
      PARADISE_RETURN_IF_ERROR(std::move(st));
    }
  }
  return Status::OK();
}

Status QueryCoordinator::RunPhase(const std::string& name,
                                  const std::function<Status(int node)>& work,
                                  const std::function<Status()>& merge) {
  return RunPhase(name, PhaseOptions{}, work, merge);
}

Status QueryCoordinator::RunPhase(const std::string& name,
                                  const PhaseOptions& opts,
                                  const std::function<Status(int node)>& work,
                                  const std::function<Status()>& merge) {
  // Workload mode: wait for this query's turn in global modeled-time
  // order and sample the contention level; then see whether this phase
  // can ride an in-flight scan of the same pages.
  double phase_start = 0.0;
  int free_eighths = 0;
  if (session_ != nullptr) {
    phase_contention_ = session_->BeginPhaseTurn();
    phase_start = ticket_->now_seconds;
    if (!opts.scan_share_key.empty()) {
      free_eighths = session_->GrantScanShare(opts.scan_share_key);
    }
  }
  const std::vector<int> alive = cluster_->alive_node_ids();
  std::vector<storage::ScanShareGate> gates;
  if (free_eighths > 0) {
    gates.resize(static_cast<size_t>(cluster_->num_nodes()));
    for (int n : alive) {
      gates[static_cast<size_t>(n)].free_eighths = free_eighths;
      cluster_->node(n).pool()->ArmScanShareGate(
          &gates[static_cast<size_t>(n)]);
    }
  }
  auto disarm_gates = [&] {
    if (gates.empty()) return;
    for (int n : alive) {
      cluster_->node(n).pool()->ArmScanShareGate(nullptr);
      phase_shared_windows_ += gates[static_cast<size_t>(n)].attached_windows;
    }
    gates.clear();
  };

  // Every alive node executes its fragment on a worker thread; ParallelFor
  // is the phase barrier. Time is taken from the per-node virtual clocks,
  // not the wall, so the thread count affects wall-clock only.
  std::vector<Status> statuses(alive.size());
  try {
    cluster_->thread_pool()->ParallelFor(
        static_cast<int>(alive.size()),
        [&](int i) { statuses[static_cast<size_t>(i)] = work(alive[i]); });
  } catch (...) {
    // A thrown closure still closes the phase: the charges made before
    // the throw belong to this (failing) query, not to whoever runs the
    // next phase on these clocks.
    disarm_gates();
    ClosePhase(name, /*sequential=*/false);
    throw;
  }
  // Report the lowest failed node, independent of completion order.
  Status failed = Status::OK();
  for (Status& s : statuses) {
    if (failed.ok() && !s.ok()) failed = std::move(s);
  }
  // Cross-node effects (exchange deliveries, receiver-side charges) run
  // single-threaded after the barrier, inside the same phase.
  if (failed.ok() && merge != nullptr) {
    failed = merge();
  }
  disarm_gates();
  ClosePhase(name, /*sequential=*/false);
  if (session_ != nullptr && !opts.scan_share_key.empty()) {
    // This scan (shared or not) is itself a stream later queries can
    // attach to over its modeled window.
    session_->RegisterScan(opts.scan_share_key, phase_start,
                           ticket_->now_seconds);
  }
  PARADISE_RETURN_IF_ERROR(std::move(failed));
  return HandleBarrierFaults();
}

Status QueryCoordinator::RunSequential(const std::string& name,
                                       const std::function<Status()>& work) {
  if (session_ != nullptr) {
    phase_contention_ = session_->BeginPhaseTurn();
  }
  Status st;
  try {
    st = work();
  } catch (...) {
    ClosePhase(name, /*sequential=*/true);
    throw;
  }
  ClosePhase(name, /*sequential=*/true);
  PARADISE_RETURN_IF_ERROR(std::move(st));
  return HandleBarrierFaults();
}

exec::PbsmJoinStats QueryCoordinator::pbsm_stats() const {
  exec::PbsmJoinStats agg;
  for (const exec::PbsmJoinStats& s : node_pbsm_) {
    agg.partitions += s.partitions;
    agg.cells_per_axis = std::max(agg.cells_per_axis, s.cells_per_axis);
    agg.left_tuples += s.left_tuples;
    agg.right_tuples += s.right_tuples;
    agg.left_items += s.left_items;
    agg.right_items += s.right_items;
    agg.max_partition_items =
        std::max(agg.max_partition_items, s.max_partition_items);
    agg.nonempty_partitions += s.nonempty_partitions;
    agg.parallel_tasks += s.parallel_tasks;
    agg.sweep_pair_compares += s.sweep_pair_compares;
    agg.sweep_candidates += s.sweep_candidates;
    agg.exact_tests += s.exact_tests;
    agg.dedup_tests += s.dedup_tests;
    agg.dedup_dropped += s.dedup_dropped;
    agg.class_a_items += s.class_a_items;
    agg.class_b_items += s.class_b_items;
    agg.class_c_items += s.class_c_items;
    agg.class_d_items += s.class_d_items;
    agg.replicated_entry_bytes += s.replicated_entry_bytes;
  }
  // Mean over *non-empty* partitions, matching the per-node definition —
  // dividing by total P would understate skew exactly when it matters
  // (clustered inputs leaving most partitions empty).
  if (agg.nonempty_partitions > 0) {
    agg.mean_partition_items =
        static_cast<double>(agg.left_items + agg.right_items) /
        static_cast<double>(agg.nonempty_partitions);
  }
  return agg;
}

void QueryCoordinator::NoteTableMutation(const std::string& table) {
  // Sampled histograms describe the pre-mutation contents; drop them so
  // the optimizer falls back to heuristics until stats are rebuilt.
  cluster_->catalog()->InvalidateTableStats(table);
  if (session_ != nullptr) {
    session_->InvalidateCachedResults(table);
  }
}

}  // namespace paradise::core
