#include "core/query_builder.h"

#include <cmath>

#include "common/logging.h"
#include "exec/spatial_join.h"
#include "sim/cost_model.h"

namespace paradise::core {

using exec::CompareOp;
using exec::ExprPtr;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;

Query Query::On(const ParallelTable* table) {
  Query q;
  q.table_ = table;
  return q;
}

Query&& Query::WhereStringEquals(size_t column, std::string value) && {
  SargPredicate p;
  p.kind = SargPredicate::kStringEq;
  p.column = column;
  p.string_value = std::move(value);
  sargs_.push_back(std::move(p));
  return std::move(*this);
}

Query&& Query::WhereIntEquals(size_t column, int64_t value) && {
  SargPredicate p;
  p.kind = SargPredicate::kIntEq;
  p.column = column;
  p.lo = value;
  p.hi = value;
  sargs_.push_back(std::move(p));
  return std::move(*this);
}

Query&& Query::WhereIntBetween(size_t column, int64_t lo, int64_t hi) && {
  SargPredicate p;
  p.kind = SargPredicate::kIntRange;
  p.column = column;
  p.lo = lo;
  p.hi = hi;
  sargs_.push_back(std::move(p));
  return std::move(*this);
}

Query&& Query::WhereDateBetween(size_t column, Date lo, Date hi) && {
  SargPredicate p;
  p.kind = SargPredicate::kIntRange;
  p.column = column;
  p.lo = lo.days_since_epoch();
  p.hi = hi.days_since_epoch();
  p.is_date = true;
  sargs_.push_back(std::move(p));
  return std::move(*this);
}

Query&& Query::WhereOverlaps(size_t column, geom::Polygon region) && {
  SargPredicate p;
  p.kind = SargPredicate::kOverlaps;
  p.column = column;
  p.region = std::move(region);
  sargs_.push_back(std::move(p));
  return std::move(*this);
}

Query&& Query::WhereWithinCircle(size_t column, geom::Circle circle) && {
  SargPredicate p;
  p.kind = SargPredicate::kWithinCircle;
  p.column = column;
  p.circle = circle;
  sargs_.push_back(std::move(p));
  return std::move(*this);
}

Query&& Query::Where(ExprPtr predicate) && {
  residuals_.push_back(std::move(predicate));
  return std::move(*this);
}

Query&& Query::SpatialJoinWith(const ParallelTable* right, size_t left_column,
                               size_t right_column) && {
  join_.right = right;
  join_.left_column = left_column;
  join_.right_column = right_column;
  return std::move(*this);
}

Query&& Query::Select(std::vector<ExprPtr> exprs) && {
  projection_ = std::move(exprs);
  return std::move(*this);
}

Query&& Query::GroupBy(std::vector<size_t> group_cols,
                       std::vector<exec::AggregatePtr> aggs) && {
  group_cols_ = std::move(group_cols);
  aggregates_ = std::move(aggs);
  has_aggregate_ = true;
  return std::move(*this);
}

Query&& Query::OrderBy(size_t column, bool ascending) && {
  order_by_ = exec::SortKey{column, ascending};
  return std::move(*this);
}

double Query::SargPredicate::EstimatedSelectivity(
    const ParallelTable& table) const {
  switch (kind) {
    case kStringEq:
      // Assume near-unique strings (names, ids).
      return 4.0 / std::max<double>(1.0, static_cast<double>(table.num_rows()));
    case kIntEq:
      return 1.0 / 16.0;  // categorical attributes in the benchmark schema
    case kIntRange: {
      double width = static_cast<double>(hi - lo + 1);
      return std::min(1.0, width / 4096.0);
    }
    case kOverlaps: {
      const geom::Box& u = table.def().universe;
      if (u.IsEmpty() || u.Area() <= 0) return 0.1;
      return std::min(1.0, region->Mbr().Area() / u.Area());
    }
    case kWithinCircle: {
      const geom::Box& u = table.def().universe;
      if (u.IsEmpty() || u.Area() <= 0) return 0.1;
      return std::min(1.0, circle->Mbr().Area() / u.Area());
    }
  }
  return 1.0;
}

ExprPtr Query::SargPredicate::AsExpr() const {
  switch (kind) {
    case kStringEq:
      return exec::Cmp(CompareOp::kEq, exec::Col(column),
                       exec::Lit(Value(string_value)));
    case kIntEq:
      return exec::Cmp(CompareOp::kEq, exec::Col(column),
                       exec::Lit(Value(lo)));
    case kIntRange: {
      Value vlo = is_date ? Value(Date(static_cast<int32_t>(lo))) : Value(lo);
      Value vhi = is_date ? Value(Date(static_cast<int32_t>(hi))) : Value(hi);
      return exec::And(exec::Cmp(CompareOp::kGe, exec::Col(column),
                                 exec::Lit(std::move(vlo))),
                       exec::Cmp(CompareOp::kLe, exec::Col(column),
                                 exec::Lit(std::move(vhi))));
    }
    case kOverlaps:
      return exec::Overlaps(exec::Col(column), exec::Lit(Value(*region)));
    case kWithinCircle:
      return exec::WithinCircle(exec::Col(column), *circle);
  }
  return nullptr;
}

namespace {

/// Coarse modeled-cost constants (seconds) for plan ranking only.
constexpr double kSeekSeconds = 0.011;
constexpr double kBytesPerSecond = 8e6;
constexpr double kOpsPerSecond = 90e6;
constexpr double kOpsPerTuple = 2000;  // deserialize + evaluate predicate

double ScanCostSeconds(const ParallelTable& table) {
  int nodes = std::max(1, table.num_fragments());
  double rows = static_cast<double>(table.num_stored()) / nodes;
  double bytes = table.avg_tuple_bytes() * rows;
  return kSeekSeconds + bytes / kBytesPerSecond +
         rows * kOpsPerTuple / kOpsPerSecond;
}

double ProbeCostSeconds(double matching_rows) {
  // Index descent plus fetches; matches cluster onto shared pages (the
  // buffer pool pays one read per page, spatial declustering keeps
  // matches of one region together).
  return kSeekSeconds * (2 + matching_rows / 16) +
         matching_rows * kOpsPerTuple / kOpsPerSecond;
}

}  // namespace

Query::AccessPath Query::ChooseAccessPath() const {
  AccessPath best;
  best.kind = AccessPath::kSeqScan;
  best.estimated_cost = ScanCostSeconds(*table_);

  // A predicate's date columns are stored as int keys in the B+-tree.
  for (const SargPredicate& p : sargs_) {
    const catalog::TableDef& def = table_->def();
    double rows = p.EstimatedSelectivity(*table_) *
                  static_cast<double>(table_->num_rows()) /
                  std::max(1, table_->num_fragments());
    switch (p.kind) {
      case SargPredicate::kStringEq:
      case SargPredicate::kIntEq:
      case SargPredicate::kIntRange: {
        if (def.FindIndexOn(p.column, /*spatial=*/false) == nullptr) break;
        double cost = ProbeCostSeconds(rows);
        if (cost < best.estimated_cost) {
          best.kind = AccessPath::kBTreeProbe;
          best.driver = &p;
          best.estimated_cost = cost;
        }
        break;
      }
      case SargPredicate::kOverlaps:
      case SargPredicate::kWithinCircle: {
        if (def.FindIndexOn(p.column, /*spatial=*/true) == nullptr) break;
        double cost = ProbeCostSeconds(rows);
        if (cost < best.estimated_cost) {
          best.kind = AccessPath::kRTreeProbe;
          best.driver = &p;
          best.estimated_cost = cost;
        }
        break;
      }
    }
  }
  return best;
}

double Query::EstimatedDriverRows() const {
  double sel = 1.0;
  for (const SargPredicate& p : sargs_) {
    sel *= p.EstimatedSelectivity(*table_);
  }
  return sel * static_cast<double>(table_->num_rows());
}

Query::JoinChoice Query::ChooseJoin(double outer_rows) const {
  JoinChoice jc = join_;
  if (jc.right == nullptr) return jc;
  bool inner_has_rtree = false;
  for (int n = 0; n < jc.right->num_fragments(); ++n) {
    if (jc.right->fragment(n).rtree != nullptr) inner_has_rtree = true;
  }
  // Replicating a small outer and probing the inner's index beats
  // redeclustering both sides while the outer stays small relative to
  // the inner ("the optimizer will consider replicating small outer
  // tables when an index exists on the join column of the inner table").
  double inner_rows = static_cast<double>(jc.right->num_rows());
  if (inner_has_rtree && outer_rows * 50.0 < inner_rows) {
    jc.algo = JoinChoice::kBroadcastIndexNL;
  } else {
    jc.algo = JoinChoice::kPbsm;
  }
  return jc;
}

StatusOr<PerNode> Query::ExecuteAccess(QueryCoordinator* coord,
                                       const AccessPath& path) const {
  // Residual predicate = every sarg except the driver, plus opaque ones.
  ExprPtr residual;
  auto add = [&](ExprPtr e) {
    residual = residual == nullptr ? e : exec::And(residual, e);
  };
  for (const SargPredicate& p : sargs_) {
    if (&p != path.driver) add(p.AsExpr());
  }
  for (const ExprPtr& e : residuals_) add(e);

  switch (path.kind) {
    case AccessPath::kSeqScan:
      return ParallelScan(coord, *table_, residual, {});
    case AccessPath::kBTreeProbe: {
      const SargPredicate& d = *path.driver;
      PerNode out;
      if (d.kind == SargPredicate::kStringEq) {
        PARADISE_ASSIGN_OR_RETURN(
            out, ParallelIndexSelectString(coord, *table_, d.column,
                                           d.string_value));
      } else {
        PARADISE_ASSIGN_OR_RETURN(
            out, ParallelIndexSelectIntRange(coord, *table_, d.column, d.lo,
                                             d.hi));
      }
      if (residual == nullptr) return out;
      // Apply the residual locally.
      Cluster* cluster = coord->cluster();
      PerNode filtered(cluster->num_nodes());
      PARADISE_RETURN_IF_ERROR(
          coord->RunPhase("residual filter", [&](int n) -> Status {
            NodeExecContext nc = MakeNodeContext(cluster, n);
            PARADISE_ASSIGN_OR_RETURN(filtered[n],
                                      exec::Filter(out[n], residual, nc.ctx));
            return Status::OK();
          }));
      return filtered;
    }
    case AccessPath::kRTreeProbe: {
      const SargPredicate& d = *path.driver;
      geom::Box probe = d.kind == SargPredicate::kOverlaps
                            ? d.region->Mbr()
                            : d.circle->Mbr();
      ExprPtr exact = d.AsExpr();
      if (residual != nullptr) exact = exec::And(exact, residual);
      return ParallelSpatialIndexSelect(coord, *table_, probe, exact);
    }
  }
  return Status::Internal("unreachable access path");
}

StatusOr<PerNode> Query::ExecuteJoin(QueryCoordinator* coord,
                                     const JoinChoice& jc,
                                     const PerNode& outer) const {
  Cluster* cluster = coord->cluster();
  if (jc.algo == JoinChoice::kBroadcastIndexNL) {
    const bool two_layer =
        jc.right->def().partitioning == catalog::PartitioningKind::kTwoLayer;
    const SpatialGrid& grid = jc.right->grid();
    PerNode everywhere;
    if (two_layer) {
      // Targeted multicast: a two-layer inner is declustered on its grid,
      // so each probe only needs to visit the nodes whose tiles its MBR
      // overlaps — the reference-point rule below then emits each
      // qualifying pair exactly once. Far fewer probe copies cross the
      // network than a broadcast.
      PARADISE_ASSIGN_OR_RETURN(
          everywhere,
          Redistribute(coord, outer,
                       [&](const Tuple& t, std::vector<uint32_t>* dest) {
                         *dest = grid.NodesOfBox(t.at(jc.left_column).Mbr());
                       }));
    } else {
      PARADISE_ASSIGN_OR_RETURN(everywhere, Broadcast(coord, outer));
    }
    PerNode out(cluster->num_nodes());
    PARADISE_RETURN_IF_ERROR(
        coord->RunPhase("index NL spatial join", [&](int n) -> Status {
          const ParallelTable::Fragment& frag = jc.right->fragment(n);
          if (frag.rtree == nullptr) {
            return Status::FailedPrecondition("inner lost its index");
          }
          NodeExecContext nc = MakeNodeContext(cluster, n);
          exec::PbsmJoinStats* sink = coord->node_pbsm_stats(n);
          exec::IndexProbeCharger charger(nc.ctx, frag.rtree->num_nodes());
          for (const Tuple& o : everywhere[n]) {
            geom::Box probe = o.at(jc.left_column).Mbr();
            nc.ctx.ChargeCpu(sim::cpu_cost::kIndexProbe);
            int64_t visited = 0;
            std::vector<std::pair<geom::Box, uint64_t>> hits;
            frag.rtree->SearchOverlap(
                probe,
                [&](const geom::Box& b, uint64_t row) {
                  hits.emplace_back(b, row);
                  return true;
                },
                &visited);
            charger.ChargeVisits(visited);
            for (const auto& [ibox, row] : hits) {
              ++sink->dedup_tests;
              bool keep;
              if (two_layer) {
                // Emit at the node owning the tile of the intersection's
                // reference point — each pair qualifies at exactly one
                // node, and that node both received the probe (its tile
                // overlaps the probe MBR) and stores the inner replica.
                geom::Point rp = grid.ClampToUniverse(
                    geom::Point{std::max(probe.xmin, ibox.xmin),
                                std::max(probe.ymin, ibox.ymin)});
                keep = grid.NodeOfPoint(rp) == static_cast<uint32_t>(n);
              } else {
                keep = jc.right->PrimaryFilter(n, row);  // dedup replicas
              }
              if (!keep) {
                ++sink->dedup_dropped;
                continue;
              }
              PARADISE_ASSIGN_OR_RETURN(Tuple inner,
                                        jc.right->FetchRow(cluster, n, row));
              PARADISE_ASSIGN_OR_RETURN(
                  bool hit, exec::SpatialIntersects(
                                o.at(jc.left_column),
                                inner.at(jc.right_column), nc.ctx));
              if (!hit) continue;
              Tuple joined;
              joined.values = o.values;
              joined.values.insert(joined.values.end(), inner.values.begin(),
                                   inner.values.end());
              out[n].push_back(std::move(joined));
            }
          }
          return Status::OK();
        }));
    return out;
  }
  // PBSM: redecluster both sides on a fresh grid.
  PARADISE_ASSIGN_OR_RETURN(PerNode inner,
                            ParallelScanAll(coord, *jc.right, nullptr));
  ParallelSpatialJoinOptions opts;
  opts.right_predeclustered =
      catalog::IsSpatialPartitioning(jc.right->def().partitioning);
  opts.two_layer =
      jc.right->def().partitioning == catalog::PartitioningKind::kTwoLayer;
  if (opts.two_layer) opts.routing_grid = &jc.right->grid();
  opts.tiles_per_axis = opts.right_predeclustered
                            ? jc.right->grid().tiles_per_axis()
                            : SpatialGrid::kDefaultTilesPerAxis;
  geom::Box universe = jc.right->def().universe;
  if (universe.IsEmpty()) {
    for (const exec::TupleVec& v : outer) {
      for (const Tuple& t : v) {
        universe.ExpandToInclude(t.at(jc.left_column).Mbr());
      }
    }
    for (const exec::TupleVec& v : inner) {
      for (const Tuple& t : v) {
        universe.ExpandToInclude(t.at(jc.right_column).Mbr());
      }
    }
  }
  return ParallelSpatialJoin(coord, outer, jc.left_column, inner,
                             jc.right_column, universe, opts);
}

std::string Query::Explain() const {
  AccessPath path = ChooseAccessPath();
  std::string out = "plan for " + table_->def().name + ":\n";
  switch (path.kind) {
    case AccessPath::kSeqScan:
      out += "  access: parallel sequential scan";
      break;
    case AccessPath::kBTreeProbe:
      out += "  access: B+-tree probe on column " +
             std::to_string(path.driver->column);
      break;
    case AccessPath::kRTreeProbe:
      out += "  access: R*-tree probe on column " +
             std::to_string(path.driver->column);
      break;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (est. %.4f s/node)\n",
                path.estimated_cost);
  out += buf;
  size_t residual_count = residuals_.size() + sargs_.size() -
                          (path.driver != nullptr ? 1 : 0);
  if (residual_count > 0) {
    out += "  residual filter: " + std::to_string(residual_count) +
           " predicate(s)\n";
  }
  if (join_.right != nullptr) {
    JoinChoice jc = ChooseJoin(EstimatedDriverRows());
    out += std::string("  join: ") +
           (jc.algo == JoinChoice::kBroadcastIndexNL
                ? "broadcast outer + indexed nested loops"
                : "spatial redecluster + PBSM") +
           " with " + jc.right->def().name + "\n";
  }
  if (has_aggregate_) {
    out += "  aggregate: two-phase (local per node, global at coordinator)\n";
  } else if (!projection_.empty()) {
    out += "  project: " + std::to_string(projection_.size()) + " column(s)\n";
  }
  if (order_by_.has_value()) {
    out += "  sort at coordinator on column " +
           std::to_string(order_by_->column) + "\n";
  }
  return out;
}

StatusOr<TupleVec> Query::Run(QueryCoordinator* coord) && {
  if (table_ == nullptr) return Status::FailedPrecondition("no table");
  PARADISE_RETURN_IF_ERROR(coord->BeginQuery());

  AccessPath path = ChooseAccessPath();
  PARADISE_ASSIGN_OR_RETURN(PerNode rows, ExecuteAccess(coord, path));

  if (join_.right != nullptr) {
    JoinChoice jc = ChooseJoin(EstimatedDriverRows());
    PARADISE_ASSIGN_OR_RETURN(rows, ExecuteJoin(coord, jc, rows));
  }

  if (has_aggregate_) {
    return ParallelAggregate(coord, rows, group_cols_, aggregates_);
  }

  if (!projection_.empty()) {
    Cluster* cluster = coord->cluster();
    PerNode projected(cluster->num_nodes());
    PARADISE_RETURN_IF_ERROR(
        coord->RunPhase("project", [&](int n) -> Status {
          NodeExecContext nc = MakeNodeContext(cluster, n);
          PARADISE_ASSIGN_OR_RETURN(
              projected[n], exec::Project(rows[n], projection_, nc.ctx));
          return Status::OK();
        }));
    rows = std::move(projected);
  }

  PARADISE_ASSIGN_OR_RETURN(TupleVec gathered, Gather(coord, rows));
  if (order_by_.has_value()) {
    PARADISE_RETURN_IF_ERROR(coord->RunSequential("sort", [&]() -> Status {
      NodeExecContext cc = MakeCoordinatorContext(coord->cluster());
      exec::SortTuples(&gathered, {*order_by_}, cc.ctx);
      return Status::OK();
    }));
  }
  return gathered;
}

}  // namespace paradise::core
