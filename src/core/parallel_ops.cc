#include "core/parallel_ops.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/logging.h"
#include "core/topology.h"
#include "opt/partition_tuner.h"
#include "sim/cost_model.h"

namespace paradise::core {

using exec::ExecContext;
using exec::ExprPtr;
using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;
using geom::Box;
using geom::Point;

NodeExecContext MakeNodeContext(Cluster* cluster, int node) {
  NodeExecContext out;
  out.pull = std::make_unique<PullTileSource>(cluster,
                                              static_cast<uint32_t>(node));
  PullTileSource* pull = out.pull.get();
  out.ctx.node_id = static_cast<uint32_t>(node);
  out.ctx.clock = cluster->node(node).clock();
  out.ctx.temp_store = cluster->node(node).temp_store();
  out.ctx.pool = cluster->thread_pool();
  out.ctx.tile_source = [pull](uint32_t) -> array::TileSource* {
    return pull;  // dispatches local vs remote per tile
  };
  return out;
}

NodeExecContext MakeCoordinatorContext(Cluster* cluster) {
  // The coordinator runs on node 0's machine in the paper's setup; its
  // sequential operators charge the dedicated coordinator clock and pull
  // tiles as a "virtual node" colocated with node 0.
  NodeExecContext out;
  out.pull = std::make_unique<PullTileSource>(cluster, 0);
  PullTileSource* pull = out.pull.get();
  out.ctx.node_id = 0;
  out.ctx.clock = cluster->coordinator_clock();
  out.ctx.temp_store = cluster->node(0).temp_store();
  out.ctx.pool = cluster->thread_pool();
  out.ctx.tile_source = [pull](uint32_t) -> array::TileSource* {
    return pull;
  };
  return out;
}

StatusOr<PerNode> ParallelScan(QueryCoordinator* coord,
                               const ParallelTable& table,
                               const ExprPtr& predicate,
                               const std::vector<ExprPtr>& projection) {
  Cluster* cluster = coord->cluster();
  PerNode out(cluster->num_nodes());
  // The phase streams the table's fragment pages (and, for raster
  // projections, their tiles) via each node's own closure, so it is safe
  // to share its readahead with a concurrent scan of the same table.
  QueryCoordinator::PhaseOptions popts;
  popts.scan_share_key = "scan:" + table.def().name;
  PARADISE_RETURN_IF_ERROR(coord->RunPhase("scan", popts, [&](int n) -> Status {
    NodeExecContext nc = MakeNodeContext(cluster, n);
    PARADISE_ASSIGN_OR_RETURN(TupleVec rows,
                              table.ScanFragment(cluster, n, true));
    if (predicate != nullptr) {
      PARADISE_ASSIGN_OR_RETURN(rows, exec::Filter(rows, predicate, nc.ctx));
    }
    if (!projection.empty()) {
      PARADISE_ASSIGN_OR_RETURN(rows, exec::Project(rows, projection, nc.ctx));
    }
    out[n] = std::move(rows);
    return Status::OK();
  }));
  return out;
}

StatusOr<PerNode> ParallelScanAll(QueryCoordinator* coord,
                                  const ParallelTable& table,
                                  const ExprPtr& predicate) {
  Cluster* cluster = coord->cluster();
  PerNode out(cluster->num_nodes());
  QueryCoordinator::PhaseOptions popts;
  popts.scan_share_key = "scan:" + table.def().name;
  PARADISE_RETURN_IF_ERROR(coord->RunPhase(
      "scan all", popts, [&](int n) -> Status {
    NodeExecContext nc = MakeNodeContext(cluster, n);
    PARADISE_ASSIGN_OR_RETURN(TupleVec rows,
                              table.ScanFragment(cluster, n, false));
    if (predicate != nullptr) {
      PARADISE_ASSIGN_OR_RETURN(rows, exec::Filter(rows, predicate, nc.ctx));
    }
    out[n] = std::move(rows);
    return Status::OK();
  }));
  return out;
}

StatusOr<PerNode> ParallelSpatialIndexSelect(QueryCoordinator* coord,
                                             const ParallelTable& table,
                                             const Box& query_mbr,
                                             const ExprPtr& exact_pred) {
  Cluster* cluster = coord->cluster();
  PerNode out(cluster->num_nodes());
  PARADISE_RETURN_IF_ERROR(
      coord->RunPhase("spatial index select", [&](int n) -> Status {
        const ParallelTable::Fragment& frag = table.fragment(n);
        if (frag.rtree == nullptr) {
          // A just-joined node's fragment is empty until migration lands
          // rows (which builds the index incrementally): zero matches.
          if (frag.num_live() == 0) return Status::OK();
          return Status::FailedPrecondition("no spatial index");
        }
        NodeExecContext nc = MakeNodeContext(cluster, n);
        int64_t nodes_visited = 0;
        std::vector<uint64_t> rows;
        frag.rtree->SearchOverlap(
            query_mbr,
            [&](const Box&, uint64_t row) {
              rows.push_back(row);
              return true;
            },
            &nodes_visited);
        nc.ctx.clock->ChargeDiskRead(nodes_visited * storage::kPageSize,
                                     nodes_visited);
        for (uint64_t row : rows) {
          // Replica check first: the primary flag lives in the fragment
          // metadata, so skipping a replica must not cost a page fetch
          // (otherwise modeled I/O inflates with the replication factor).
          if (!table.PrimaryFilter(n, row)) continue;
          PARADISE_ASSIGN_OR_RETURN(Tuple t, table.FetchRow(cluster, n, row));
          if (exact_pred != nullptr) {
            PARADISE_ASSIGN_OR_RETURN(bool keep,
                                      EvalPredicate(exact_pred, t, nc.ctx));
            if (!keep) continue;
          }
          out[n].push_back(std::move(t));
        }
        return Status::OK();
      }));
  return out;
}

namespace {

Status ChargeBTreeProbe(sim::NodeClock* clock, size_t height) {
  clock->ChargeCpu(sim::cpu_cost::kIndexProbe);
  clock->ChargeDiskRead(static_cast<int64_t>(height * storage::kPageSize),
                        static_cast<int64_t>(height));
  return Status::OK();
}

}  // namespace

StatusOr<PerNode> ParallelIndexSelectString(QueryCoordinator* coord,
                                            const ParallelTable& table,
                                            size_t column,
                                            const std::string& key) {
  Cluster* cluster = coord->cluster();
  PerNode out(cluster->num_nodes());
  PARADISE_RETURN_IF_ERROR(
      coord->RunPhase("index select", [&](int n) -> Status {
        const ParallelTable::Fragment& frag = table.fragment(n);
        auto it = frag.string_indexes.find(column);
        if (it == frag.string_indexes.end()) {
          if (frag.num_live() == 0) return Status::OK();  // fresh node
          return Status::FailedPrecondition("no index on column");
        }
        PARADISE_RETURN_IF_ERROR(
            ChargeBTreeProbe(cluster->node(n).clock(), it->second.height()));
        for (uint64_t row : it->second.Find(key)) {
          if (!table.PrimaryFilter(n, row)) continue;
          PARADISE_ASSIGN_OR_RETURN(Tuple t, table.FetchRow(cluster, n, row));
          out[n].push_back(std::move(t));
        }
        return Status::OK();
      }));
  return out;
}

StatusOr<PerNode> ParallelIndexSelectIntRange(QueryCoordinator* coord,
                                              const ParallelTable& table,
                                              size_t column, int64_t lo,
                                              int64_t hi) {
  Cluster* cluster = coord->cluster();
  PerNode out(cluster->num_nodes());
  PARADISE_RETURN_IF_ERROR(
      coord->RunPhase("index range select", [&](int n) -> Status {
        const ParallelTable::Fragment& frag = table.fragment(n);
        auto it = frag.int_indexes.find(column);
        if (it == frag.int_indexes.end()) {
          if (frag.num_live() == 0) return Status::OK();  // fresh node
          return Status::FailedPrecondition("no index on column");
        }
        sim::NodeClock* clock = cluster->node(n).clock();
        PARADISE_RETURN_IF_ERROR(ChargeBTreeProbe(clock, it->second.height()));
        std::vector<uint64_t> rows;
        it->second.RangeScan(lo, hi, [&](const int64_t&, const uint64_t& row) {
          rows.push_back(row);
          return true;
        });
        // Leaf pages touched by the range: ceil(rows / entries-per-leaf),
        // and nothing at all for an empty range (the probe already paid
        // the descent to the would-be position).
        if (!rows.empty()) {
          int64_t leaves = static_cast<int64_t>(
              (rows.size() + index::BPlusTree<int64_t>::kMaxEntries - 1) /
              index::BPlusTree<int64_t>::kMaxEntries);
          clock->ChargeDiskRead(leaves * storage::kPageSize, 1);
        }
        for (uint64_t row : rows) {
          if (!table.PrimaryFilter(n, row)) continue;
          PARADISE_ASSIGN_OR_RETURN(Tuple t, table.FetchRow(cluster, n, row));
          out[n].push_back(std::move(t));
        }
        return Status::OK();
      }));
  return out;
}

StatusOr<PerNode> Redistribute(
    QueryCoordinator* coord, const PerNode& input,
    const std::function<void(const Tuple&, std::vector<uint32_t>*)>& route) {
  Cluster* cluster = coord->cluster();
  int N = cluster->num_nodes();
  PerNode out(N);
  // In degraded (N-1) mode a route function that predates the loss may
  // still name a dead destination; remap those over the survivors
  // deterministically so no tuple lands on a node that will never run.
  const std::vector<int> alive_ids = cluster->alive_node_ids();
  const bool degraded = static_cast<int>(alive_ids.size()) < N;
  // Exchange protocol in two steps. Partition: every node bins its own
  // tuples per destination, touching only its own clock. Merge (after the
  // barrier, single-threaded): deliveries, receiver-side deserialization
  // CPU, and link transfers — everything that mutates *other* nodes.
  struct OutBin {
    TupleVec tuples;
    int64_t bytes = 0;  // wire bytes headed off-node
  };
  std::vector<std::vector<OutBin>> bins(N, std::vector<OutBin>(N));
  PARADISE_RETURN_IF_ERROR(coord->RunPhase(
      "redistribute",
      [&](int n) -> Status {
        sim::NodeClock* clock = cluster->node(n).clock();
        std::vector<uint32_t> dests;
        for (const Tuple& t : input[n]) {
          clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                           sim::cpu_cost::kHash);
          dests.clear();
          route(t, &dests);
          if (degraded) {
            for (uint32_t& d : dests) {
              if (!cluster->alive(static_cast<int>(d))) {
                d = static_cast<uint32_t>(alive_ids[d % alive_ids.size()]);
              }
            }
            std::sort(dests.begin(), dests.end());
            dests.erase(std::unique(dests.begin(), dests.end()),
                        dests.end());
          }
          size_t wire = t.WireBytes();
          for (uint32_t d : dests) {
            PARADISE_DCHECK(d < static_cast<uint32_t>(N));
            OutBin& bin = bins[n][d];
            if (static_cast<int>(d) != n) {
              bin.bytes += static_cast<int64_t>(wire);
            }
            bin.tuples.push_back(t);
          }
        }
        return Status::OK();
      },
      [&]() -> Status {
        for (int n = 0; n < N; ++n) {
          for (int d = 0; d < N; ++d) {
            OutBin& bin = bins[n][d];
            if (d != n) {
              // Receiver pays deserialization CPU.
              sim::NodeClock* receiver = cluster->node(d).clock();
              for (const Tuple& t : bin.tuples) {
                receiver->ChargeCpu(sim::cpu_cost::kPerByteCopied *
                                    static_cast<double>(t.WireBytes()));
              }
            }
            cluster->ChargeTransfer(static_cast<uint32_t>(n),
                                    static_cast<uint32_t>(d), bin.bytes);
            for (Tuple& t : bin.tuples) out[d].push_back(std::move(t));
            bin.tuples.clear();
          }
        }
        return Status::OK();
      }));
  return out;
}

StatusOr<PerNode> Broadcast(QueryCoordinator* coord, const PerNode& input) {
  int N = coord->cluster()->num_nodes();
  return Redistribute(coord, input,
                      [N](const Tuple&, std::vector<uint32_t>* dests) {
                        for (int d = 0; d < N; ++d) {
                          dests->push_back(static_cast<uint32_t>(d));
                        }
                      });
}

StatusOr<TupleVec> Gather(QueryCoordinator* coord, const PerNode& input) {
  Cluster* cluster = coord->cluster();
  TupleVec out;
  PARADISE_RETURN_IF_ERROR(coord->RunSequential("gather", [&]() -> Status {
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      int64_t bytes = 0;
      for (const Tuple& t : input[n]) {
        bytes += static_cast<int64_t>(t.WireBytes());
        out.push_back(t);
      }
      if (bytes > 0) {
        int64_t messages = (bytes + 8191) / 8192;
        cluster->node(n).clock()->ChargeNet(messages, bytes);
        cluster->coordinator_clock()->ChargeNet(messages, bytes);
      }
    }
    return Status::OK();
  }));
  return out;
}

StatusOr<PerNode> ParallelSpatialJoin(QueryCoordinator* coord,
                                      const PerNode& left, size_t left_col,
                                      const PerNode& right, size_t right_col,
                                      const Box& universe,
                                      const ParallelSpatialJoinOptions& opts) {
  Cluster* cluster = coord->cluster();
  int N = cluster->num_nodes();
  // The single source of truth for ownership and liveness: either the
  // caller's table grid (predeclustered joins) or a topology-derived
  // routing grid. A dead node's tiles rehash over the survivors; without
  // that, the reference-point filter below asks for the dead node's vote
  // and its pairs vanish from the answer.
  const SpatialGrid grid =
      opts.routing_grid != nullptr
          ? *opts.routing_grid
          : cluster->topology()->MakeRoutingGrid(universe,
                                                 opts.tiles_per_axis);

  // Phase 1: spatial redeclustering with replication (skipped for inputs
  // already declustered on this grid).
  auto route_spatial = [&grid](size_t col) {
    return [&grid, col](const Tuple& t, std::vector<uint32_t>* dests) {
      *dests = grid.NodesOfBox(t.at(col).Mbr());
    };
  };
  PerNode left_placed;
  if (opts.left_predeclustered) {
    left_placed = left;
  } else {
    PARADISE_ASSIGN_OR_RETURN(left_placed,
                              Redistribute(coord, left, route_spatial(left_col)));
  }
  PerNode right_placed;
  if (opts.right_predeclustered) {
    right_placed = right;
  } else {
    PARADISE_ASSIGN_OR_RETURN(
        right_placed, Redistribute(coord, right, route_spatial(right_col)));
  }

  // Adaptive mode: derive plan-time features from catalog stats, ask the
  // advisor (or honor a forced decision), and build a tuned kAdaptive
  // cell grid when stats exist. All inputs to these decisions are pure
  // data (histograms, feedback store) — nothing here depends on thread
  // schedule.
  exec::PbsmOptions pbsm = opts.pbsm;
  opt::JoinFeatures features;
  opt::JoinDecision decision;  // default = today's fixed heuristic
  exec::AdaptiveCellGrid tuned;
  double tuned_skew = 0.0;
  bool use_inl = false;
  if (opts.adaptive) {
    auto count_rows = [](const PerNode& side) {
      int64_t n = 0;
      for (const TupleVec& v : side) n += static_cast<int64_t>(v.size());
      return static_cast<double>(n);
    };
    const opt::HistogramStats* lstats =
        cluster->catalog()->FindTableStats(opts.left_stats_table);
    const opt::HistogramStats* rstats =
        cluster->catalog()->FindTableStats(opts.right_stats_table);
    features.left_rows = lstats != nullptr
                             ? static_cast<double>(lstats->total_rows)
                             : count_rows(left);
    features.right_rows = rstats != nullptr
                              ? static_cast<double>(rstats->total_rows)
                              : count_rows(right);
    features.left_skew = lstats != nullptr ? lstats->DensitySkew() : 1.0;
    features.right_skew = rstats != nullptr ? rstats->DensitySkew() : 1.0;
    decision = opts.override_decision != nullptr
                   ? *opts.override_decision
                   : cluster->join_advisor()->Choose(features, opts.two_layer);
    if (opts.two_layer && decision.method != opt::JoinMethod::kPbsm) {
      // The class mini-join plan is a property of the partition join;
      // index nested loops cannot exploit it, so two-layer always runs
      // the partition plan.
      decision.method = opt::JoinMethod::kPbsm;
    }
    if (decision.method == opt::JoinMethod::kPbsm) {
      if (decision.cells_per_axis > 0) {
        pbsm.cells_per_axis = decision.cells_per_axis;
      }
      if (lstats != nullptr || rstats != nullptr) {
        opt::PartitionTunerOptions tuner;
        tuner.num_partitions = std::max<size_t>(1, pbsm.num_partitions);
        tuner.skew_target = opts.tuner_skew_target;
        tuner.min_cells_per_axis = decision.cells_per_axis;
        opt::TunedPartitioning tp =
            lstats != nullptr ? opt::TunePartitions(*lstats, rstats, tuner)
                              : opt::TunePartitions(*rstats, nullptr, tuner);
        if (tp.grid.Valid(tuner.num_partitions)) {
          tuned = std::move(tp.grid);
          tuned_skew = tp.predicted_skew;
          pbsm.cell_map = exec::PbsmOptions::CellMap::kAdaptive;
          pbsm.adaptive = &tuned;
        }
      }
    } else {
      use_inl = true;
    }
  }

  // Phase 2: local join + cross-node duplicate elimination by the
  // reference-point rule. Both methods emit [left ⊕ right] tuples, so
  // one dedup filter serves either.
  PerNode out(N);
  size_t left_width = 0;
  for (const TupleVec& v : left) {
    if (!v.empty()) {
      left_width = v[0].size();
      break;
    }
  }
  auto dedup_into = [&](int n, TupleVec joined) {
    // Every cross-node joined tuple pays a reference-point test; the
    // per-node sink tallies them (and the duplicates they drop) so the
    // replicate-and-dedup cost is observable next to the two-layer path's
    // guaranteed zeros.
    exec::PbsmJoinStats* sink = coord->node_pbsm_stats(n);
    sink->dedup_tests += static_cast<int64_t>(joined.size());
    for (Tuple& t : joined) {
      Box lb = t.at(left_col).Mbr();
      Box rb = t.at(left_width + right_col).Mbr();
      Point rp = grid.ClampToUniverse(
          Point{std::max(lb.xmin, rb.xmin), std::max(lb.ymin, rb.ymin)});
      if (grid.NodeOfPoint(rp) != static_cast<uint32_t>(n)) {
        ++sink->dedup_dropped;
        continue;
      }
      out[n].push_back(std::move(t));
    }
  };
  const size_t phases_before = coord->phases().size();
  if (opts.two_layer) {
    // Two-layer class mini-join plan: each node sweeps only the tiles it
    // owns, every pair is emitted exactly once at the tile holding the
    // intersection's reference point — which the replica-completeness
    // invariant guarantees this node stores both sides of. No dedup
    // filter runs, here or per partition.
    PARADISE_RETURN_IF_ERROR(
        coord->RunPhase("two-layer join", [&](int n) -> Status {
          NodeExecContext nc = MakeNodeContext(cluster, n);
          nc.ctx.pbsm_stats = coord->node_pbsm_stats(n);
          std::vector<uint8_t> owned(grid.num_tiles(), 0);
          for (uint32_t t = 0; t < grid.num_tiles(); ++t) {
            owned[t] = grid.NodeOfTile(t) == static_cast<uint32_t>(n) ? 1 : 0;
          }
          exec::TwoLayerOptions two;
          two.tiles_per_axis = grid.tiles_per_axis();
          two.universe = grid.universe();
          two.owned = &owned;
          two.num_tasks = std::max<size_t>(1, pbsm.num_partitions);
          two.group_packer = &opt::PackTileGroups;
          PARADISE_ASSIGN_OR_RETURN(
              out[n],
              exec::TwoLayerSpatialJoin(left_placed[n], left_col,
                                        right_placed[n], right_col, nc.ctx,
                                        two));
          return Status::OK();
        }));
  } else if (!use_inl) {
    PARADISE_RETURN_IF_ERROR(
        coord->RunPhase("pbsm join", [&](int n) -> Status {
          NodeExecContext nc = MakeNodeContext(cluster, n);
          // Each node fills only its own per-query sink (the RunPhase
          // contract); the coordinator aggregates them for the report.
          nc.ctx.pbsm_stats = coord->node_pbsm_stats(n);
          PARADISE_ASSIGN_OR_RETURN(
              TupleVec joined,
              exec::PbsmSpatialJoin(left_placed[n], left_col,
                                    right_placed[n], right_col, nc.ctx,
                                    pbsm));
          dedup_into(n, std::move(joined));
          return Status::OK();
        }));
  } else {
    PARADISE_RETURN_IF_ERROR(
        coord->RunPhase("index join", [&](int n) -> Status {
          NodeExecContext nc = MakeNodeContext(cluster, n);
          // Build-on-the-fly local R*-tree on the inner, then probe with
          // every outer tuple — Query 12's step-3 pattern reused as a
          // full join method.
          std::unique_ptr<index::RStarTree> tree =
              exec::BuildRTreeOnColumn(right_placed[n], right_col, nc.ctx);
          PARADISE_ASSIGN_OR_RETURN(
              TupleVec joined,
              exec::IndexSpatialJoin(left_placed[n], left_col,
                                     right_placed[n], right_col, *tree,
                                     nc.ctx));
          dedup_into(n, std::move(joined));
          return Status::OK();
        }));
  }

  // Cost feedback: record what ran and what it cost in modeled seconds,
  // once, at the coordinator after the phase barrier — a deterministic
  // merge point, so the advisor's store (and thus future advice) is
  // bit-identical at any thread count.
  if (opts.adaptive) {
    double observed = 0.0;
    for (size_t i = phases_before; i < coord->phases().size(); ++i) {
      observed += coord->phases()[i].seconds;
    }
    opt::JoinObservation obs;
    obs.features = features;
    obs.method = decision.method;
    obs.two_layer = opts.two_layer;
    obs.modeled_seconds = observed;
    if (!use_inl) {
      obs.stats = coord->pbsm_stats();
      obs.cells_per_axis = obs.stats.cells_per_axis;
    }
    cluster->join_advisor()->Record(obs);
    if (opts.report != nullptr) {
      opts.report->features = features;
      opts.report->decision = decision;
      opts.report->used_tuned_grid = pbsm.adaptive != nullptr;
      opts.report->predicted_skew = tuned_skew;
      opts.report->observed_seconds = observed;
      opts.report->cells_per_axis = obs.cells_per_axis;
    }
  }
  return out;
}

StatusOr<TupleVec> ParallelAggregate(QueryCoordinator* coord,
                                     const PerNode& input,
                                     const std::vector<size_t>& group_cols,
                                     const std::vector<exec::AggregatePtr>& aggs) {
  Cluster* cluster = coord->cluster();
  int N = cluster->num_nodes();
  PerNode partials(N);
  PARADISE_RETURN_IF_ERROR(
      coord->RunPhase("local aggregate", [&](int n) -> Status {
        NodeExecContext nc = MakeNodeContext(cluster, n);
        PARADISE_ASSIGN_OR_RETURN(
            partials[n], exec::AggregateLocal(input[n], group_cols, aggs,
                                              nc.ctx));
        return Status::OK();
      }));

  // The single global aggregate operator (sequential, as in the paper).
  TupleVec result;
  PARADISE_RETURN_IF_ERROR(
      coord->RunSequential("global aggregate", [&]() -> Status {
        TupleVec all;
        for (int n = 0; n < N; ++n) {
          int64_t bytes = 0;
          for (const Tuple& t : partials[n]) {
            bytes += static_cast<int64_t>(t.WireBytes());
            all.push_back(t);
          }
          if (bytes > 0) {
            int64_t messages = (bytes + 8191) / 8192;
            cluster->node(n).clock()->ChargeNet(messages, bytes);
            cluster->coordinator_clock()->ChargeNet(messages, bytes);
          }
        }
        NodeExecContext cc = MakeCoordinatorContext(cluster);
        PARADISE_ASSIGN_OR_RETURN(
            result,
            exec::AggregateGlobal(all, group_cols.size(), aggs, cc.ctx));
        return Status::OK();
      }));
  return result;
}

StatusOr<TupleVec> SpatialJoinWithClosest(
    QueryCoordinator* coord, const PerNode& points, size_t point_col,
    const PerNode& features, size_t shape_col, const Box& universe,
    uint32_t tiles_per_axis, ClosestJoinStats* stats) {
  Cluster* cluster = coord->cluster();
  int N = cluster->num_nodes();
  const SpatialGrid grid =
      cluster->topology()->MakeRoutingGrid(universe, tiles_per_axis);
  double universe_area = universe.Area();

  // Step 1-2: decluster features (with replication) and points on the
  // same grid.
  PARADISE_ASSIGN_OR_RETURN(
      PerNode features_placed,
      Redistribute(coord, features,
                   [&](const Tuple& t, std::vector<uint32_t>* dests) {
                     *dests = grid.NodesOfBox(t.at(shape_col).Mbr());
                   }));
  PARADISE_ASSIGN_OR_RETURN(
      PerNode points_placed,
      Redistribute(coord, points,
                   [&](const Tuple& t, std::vector<uint32_t>* dests) {
                     dests->push_back(grid.NodeOfPoint(t.at(point_col).AsPoint()));
                   }));

  // Step 3 + semi-join: build the local index on the fly; points whose
  // largest inscribed circle finds the answer stay local, others are
  // collected for replication.
  std::vector<std::unique_ptr<index::RStarTree>> trees(N);
  PerNode partials(N);    // [point, shape, distance] candidates
  PerNode unresolved(N);  // point tuples needing every node
  // Per-node tallies: node n's closure may only write slot n.
  std::vector<int64_t> local_counts(N, 0);
  PARADISE_RETURN_IF_ERROR(
      coord->RunPhase("spatial semi-join", [&](int n) -> Status {
        NodeExecContext nc = MakeNodeContext(cluster, n);
        trees[n] = exec::BuildRTreeOnColumn(features_placed[n], shape_col,
                                            nc.ctx);
        for (const Tuple& pt : points_placed[n]) {
          const Point& p = pt.at(point_col).AsPoint();
          uint32_t tile = grid.TileOfPoint(p);
          double radius = grid.TileBox(tile).BoundaryDistanceFrom(p);
          // Probe the inscribed circle.
          nc.ctx.clock->ChargeCpu(sim::cpu_cost::kIndexProbe);
          int64_t visited = 0;
          double best_d = std::numeric_limits<double>::infinity();
          size_t best_row = 0;
          trees[n]->SearchCircle(
              geom::Circle(p, radius),
              [&](const Box&, uint64_t row) {
                auto d_or = SpatialDistance(
                    Value(p), features_placed[n][row].at(shape_col), nc.ctx);
                if (d_or.ok() && *d_or < best_d) {
                  best_d = *d_or;
                  best_row = row;
                }
                return true;
              },
              &visited);
          // On-the-fly index: memory-resident probes (CPU only).
          nc.ctx.ChargeCpu(static_cast<double>(visited) *
                           sim::cpu_cost::kIndexNodeVisit);
          if (best_d <= radius) {
            // The closest feature is provably local.
            Tuple partial;
            partial.values.push_back(pt.at(point_col));
            partial.values.push_back(
                features_placed[n][best_row].at(shape_col));
            partial.values.push_back(Value(best_d));
            partials[n].push_back(std::move(partial));
            ++local_counts[n];
          } else {
            unresolved[n].push_back(pt);
          }
        }
        return Status::OK();
      }));

  // Step 3b: replicate unresolved points to every node.
  int64_t replicated_count = 0;
  for (const TupleVec& v : unresolved) {
    replicated_count += static_cast<int64_t>(v.size());
  }
  PARADISE_ASSIGN_OR_RETURN(PerNode everywhere,
                            Broadcast(coord, unresolved));

  // Step 4: join-with-aggregate — expanding-circle probes per point.
  PARADISE_RETURN_IF_ERROR(
      coord->RunPhase("join with aggregate", [&](int n) -> Status {
        NodeExecContext nc = MakeNodeContext(cluster, n);
        if (features_placed[n].empty()) return Status::OK();
        for (const Tuple& pt : everywhere[n]) {
          const Point& p = pt.at(point_col).AsPoint();
          PARADISE_ASSIGN_OR_RETURN(
              exec::ClosestMatch match,
              exec::ExpandingCircleClosest(p, features_placed[n], shape_col,
                                           *trees[n], universe_area, nc.ctx));
          if (!match.found) continue;
          Tuple partial;
          partial.values.push_back(pt.at(point_col));
          partial.values.push_back(
              features_placed[n][match.row].at(shape_col));
          partial.values.push_back(Value(match.distance));
          partials[n].push_back(std::move(partial));
        }
        return Status::OK();
      }));

  if (stats != nullptr) {
    stats->local_points = 0;
    for (int64_t c : local_counts) stats->local_points += c;
    stats->replicated_points = replicated_count;
  }

  // Step 5: the single global aggregate operator — min distance per point.
  TupleVec result;
  PARADISE_RETURN_IF_ERROR(
      coord->RunSequential("global aggregate", [&]() -> Status {
        std::map<std::pair<double, double>, Tuple> best;
        for (int n = 0; n < N; ++n) {
          int64_t bytes = 0;
          for (const Tuple& t : partials[n]) {
            bytes += static_cast<int64_t>(t.WireBytes());
            cluster->coordinator_clock()->ChargeCpu(
                sim::cpu_cost::kTupleOverhead);
            const Point& p = t.at(0).AsPoint();
            auto key = std::make_pair(p.x, p.y);
            auto it = best.find(key);
            if (it == best.end() ||
                t.at(2).AsDouble() < it->second.at(2).AsDouble()) {
              best[key] = t;
            }
          }
          if (bytes > 0) {
            int64_t messages = (bytes + 8191) / 8192;
            cluster->node(n).clock()->ChargeNet(messages, bytes);
            cluster->coordinator_clock()->ChargeNet(messages, bytes);
          }
        }
        for (auto& [key, t] : best) result.push_back(std::move(t));
        return Status::OK();
      }));
  return result;
}

namespace {

/// Deep copy of a raster's tiles onto `dest_node` (copy-on-insert).
StatusOr<array::Raster> CopyRasterTo(Cluster* cluster, int dest_node,
                                     const array::Raster& raster) {
  PullTileSource pull(cluster, static_cast<uint32_t>(dest_node));
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer data,
                            array::ReadFull(raster.handle, &pull));
  Node& dest = cluster->node(dest_node);
  array::Raster copy;
  copy.geo = raster.geo;
  PARADISE_ASSIGN_OR_RETURN(
      copy.handle,
      array::StoreArray(data.data(), raster.handle.dims,
                        raster.handle.elem_size, dest.lob_store(),
                        dest.clock(), /*compress=*/true,
                        array::kDefaultTileBytes,
                        static_cast<uint32_t>(dest_node)));
  return copy;
}

}  // namespace

StatusOr<std::unique_ptr<ParallelTable>> StoreResult(QueryCoordinator* coord,
                                                     const PerNode& input,
                                                     catalog::TableDef def) {
  Cluster* cluster = coord->cluster();
  int N = cluster->num_nodes();

  // Destination assignment: round-robin over the flattened result, i.e.
  // tuple with global index g (counting node 0's tuples, then node 1's,
  // ...) lands on the g-th alive node cyclically. Every node knows its
  // flattened offset up front, so destinations need no coordination and
  // the output fragments can never differ in cardinality by more than one
  // — a declustered result table, however skewed the input was. In
  // degraded mode only the survivors receive fragments.
  const std::vector<int> alive_ids = cluster->alive_node_ids();
  const int A = static_cast<int>(alive_ids.size());
  std::vector<size_t> offset(N, 0);
  for (int n = 1; n < N; ++n) offset[n] = offset[n - 1] + input[n - 1].size();

  // Partition step (parallel): each node charges its own per-tuple CPU
  // and stages shallow copies per destination. Merge step (post-barrier,
  // single-threaded): deep-copy large attributes onto the destination
  // (pulling tiles, charging owner read + link + destination write) and
  // charge the tuple transfers — all the cross-node mutation.
  std::vector<std::vector<std::pair<int, Tuple>>> staged(N);
  PerNode placed(N);
  PARADISE_RETURN_IF_ERROR(coord->RunPhase(
      "copy on insert",
      [&](int n) -> Status {
        sim::NodeClock* clock = cluster->node(n).clock();
        staged[n].reserve(input[n].size());
        for (size_t i = 0; i < input[n].size(); ++i) {
          int dest = alive_ids[(offset[n] + i) % A];
          clock->ChargeCpu(sim::cpu_cost::kTupleOverhead);
          staged[n].emplace_back(dest, input[n][i]);
        }
        return Status::OK();
      },
      [&]() -> Status {
        for (int n = 0; n < N; ++n) {
          for (auto& [dest, copy] : staged[n]) {
            for (Value& v : copy.values) {
              if (v.type() == ValueType::kRaster) {
                PARADISE_ASSIGN_OR_RETURN(
                    array::Raster moved,
                    CopyRasterTo(cluster, dest, *v.AsRaster()));
                v = Value(std::move(moved));
              }
            }
            if (dest != n) {
              cluster->ChargeTransfer(static_cast<uint32_t>(n),
                                      static_cast<uint32_t>(dest),
                                      static_cast<int64_t>(copy.WireBytes()));
            }
            placed[dest].push_back(std::move(copy));
          }
          staged[n].clear();
        }
        return Status::OK();
      }));

  // Flattened round-robin placement balances the alive fragments to
  // within one.
  size_t min_frag = SIZE_MAX, max_frag = 0;
  for (int d : alive_ids) {
    min_frag = std::min(min_frag, placed[d].size());
    max_frag = std::max(max_frag, placed[d].size());
  }
  PARADISE_DCHECK(max_frag - min_frag <= 1);

  // Physically insert into fresh fragments at exactly the nodes the phase
  // above copied to (explicit owners — the movement is already charged).
  std::vector<Tuple> all;
  std::vector<uint32_t> owners;
  for (int d = 0; d < N; ++d) {
    for (Tuple& t : placed[d]) {
      all.push_back(std::move(t));
      owners.push_back(static_cast<uint32_t>(d));
    }
  }
  def.partitioning = catalog::PartitioningKind::kRoundRobin;
  // Storing into the table mutates it: any cached query result computed
  // from it is now stale.
  coord->NoteTableMutation(def.name);
  return ParallelTable::Load(cluster, std::move(def), all,
                             SpatialGrid::kDefaultTilesPerAxis, &owners);
}

}  // namespace paradise::core
