#ifndef PARADISE_CORE_SPATIAL_GRID_H_
#define PARADISE_CORE_SPATIAL_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "geom/box.h"

namespace paradise::core {

/// The spatial declustering scheme of Sections 2.7.1 and Query 12: the
/// universe is cut into tiles_per_axis^2 tiles, numbered row-major from
/// the upper-left corner; each tile is mapped to a node by hashing its
/// number. Tuples go to every node owning a tile their MBR overlaps
/// (replication); exactly one copy — the one at the tile holding the
/// feature's reference point — is the *primary* copy.
///
/// Ownership resolution is layered: a planned reassignment (tile
/// migration, scale-out onto an added node) overrides the base hash,
/// and the dead-node rehash then applies to whatever that resolves to.
/// The `epoch` counter versions the assignment: every topology change
/// (join/leave/migration cutover) bumps it, so readers can pin the
/// epoch they started under.
class SpatialGrid {
 public:
  /// The paper breaks the universe into 10,000 tiles (100 x 100).
  static constexpr uint32_t kDefaultTilesPerAxis = 100;

  SpatialGrid() = default;
  SpatialGrid(const geom::Box& universe, uint32_t tiles_per_axis,
              uint32_t num_nodes)
      : universe_(universe),
        tiles_per_axis_(tiles_per_axis),
        num_nodes_(num_nodes),
        max_node_(num_nodes - 1) {
    PARADISE_CHECK(tiles_per_axis > 0 && num_nodes > 0);
    PARADISE_CHECK(!universe.IsEmpty());
  }

  const geom::Box& universe() const { return universe_; }
  uint32_t tiles_per_axis() const { return tiles_per_axis_; }
  uint32_t num_tiles() const { return tiles_per_axis_ * tiles_per_axis_; }
  uint32_t num_nodes() const { return num_nodes_; }
  /// Highest node id the grid can route to (>= num_nodes()-1 once nodes
  /// have been added by a scale-out).
  uint32_t max_node() const { return max_node_; }

  /// Monotonic topology version; bumped by the owner (TopologyManager)
  /// on every membership change and migration cutover.
  uint64_t epoch() const { return epoch_; }
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }

  /// Tile numbering is row-major starting at the upper-left corner
  /// (max y, min x), as Query 12's description specifies.
  uint32_t TileOfPoint(const geom::Point& p) const {
    uint32_t cx = CoordToCell(p.x - universe_.xmin, universe_.Width());
    uint32_t cy = CoordToCell(universe_.ymax - p.y, universe_.Height());
    return cy * tiles_per_axis_ + cx;
  }

  /// Node owning a tile: planned reassignment if present, else hash on
  /// the tile number. Tiles whose resolved owner has been marked dead
  /// are rehashed over the survivors, so a dead node's tiles spread
  /// across all remaining nodes deterministically (the survivor
  /// redistribution scheme used after a permanent loss).
  uint32_t NodeOfTile(uint32_t tile) const {
    uint32_t n;
    if (!reassigned_.empty()) {
      auto it = reassigned_.find(tile);
      n = it != reassigned_.end() ? it->second : BaseNodeOfTile(tile);
    } else {
      n = BaseNodeOfTile(tile);
    }
    if (alive_nodes_.empty() || n >= dead_.size() || !dead_[n]) return n;
    // Use independent hash bits for the secondary placement so the
    // reassigned tiles do not all land on one survivor.
    uint64_t h = (tile + 0x51ed270b) * 0xbf58476d1ce4e5b9ULL;
    return alive_nodes_[(h >> 32) % alive_nodes_.size()];
  }

  /// The unmodified hash owner of a tile (ignores planned reassignment
  /// and dead-node remapping).
  uint32_t BaseNodeOfTile(uint32_t tile) const {
    // Fibonacci hashing spreads consecutive tiles across nodes.
    uint64_t h = tile * 0x9e3779b97f4a7c15ULL;
    return static_cast<uint32_t>((h >> 32) % num_nodes_);
  }

  /// Extends the routable node domain to include `node` (scale-out).
  /// The base hash still spreads over the original num_nodes(); added
  /// nodes only receive tiles through explicit reassignment.
  void IncludeNode(uint32_t node) {
    if (node > max_node_) max_node_ = node;
    if (!dead_.empty() && dead_.size() <= max_node_) {
      dead_.resize(max_node_ + 1, 0);
      RebuildAliveNodes();
    }
  }

  /// Plans/commits tile ownership: `tile` now belongs to `node`
  /// regardless of the base hash (the dead-node rehash still applies
  /// should `node` later die).
  void ReassignTile(uint32_t tile, uint32_t node) {
    PARADISE_CHECK(tile < num_tiles());
    IncludeNode(node);
    if (node == BaseNodeOfTile(tile)) {
      reassigned_.erase(tile);
    } else {
      reassigned_[tile] = node;
    }
  }

  /// Tiles currently reassigned away from their base owner.
  const std::unordered_map<uint32_t, uint32_t>& reassigned_tiles() const {
    return reassigned_;
  }

  /// Marks a node dead: every tile it owned is remapped over survivors.
  void MarkNodeDead(uint32_t node) {
    IncludeNode(node);
    if (dead_.empty()) dead_.assign(max_node_ + 1, 0);
    PARADISE_CHECK(node <= max_node_);
    dead_[node] = 1;
    RebuildAliveNodes();
    PARADISE_CHECK_MSG(!alive_nodes_.empty(), "all grid nodes dead");
  }

  /// Reinstates a previously dead/removed node (rolling-restart rejoin).
  void MarkNodeAlive(uint32_t node) {
    if (dead_.empty() || node >= dead_.size() || !dead_[node]) return;
    dead_[node] = 0;
    RebuildAliveNodes();
  }

  bool node_dead(uint32_t node) const {
    return !dead_.empty() && node < dead_.size() && dead_[node] != 0;
  }

  uint32_t NodeOfPoint(const geom::Point& p) const {
    return NodeOfTile(TileOfPoint(p));
  }

  /// Geographic extent of a tile.
  geom::Box TileBox(uint32_t tile) const {
    uint32_t cx = tile % tiles_per_axis_;
    uint32_t cy = tile / tiles_per_axis_;
    double w = universe_.Width() / tiles_per_axis_;
    double h = universe_.Height() / tiles_per_axis_;
    double x0 = universe_.xmin + cx * w;
    double y1 = universe_.ymax - cy * h;
    return geom::Box(x0, y1 - h, x0 + w, y1);
  }

  /// Cell-index rectangle of a box: columns [cx0, cx1], rows [cy0, cy1].
  /// Rows are numbered downward from ymax, so cy0 is the row holding
  /// b.ymax and cy1 the row holding b.ymin — the *begin* tile (the one
  /// containing the reference point) is (cx0, cy1).
  struct CellRange {
    uint32_t cx0 = 0, cx1 = 0;
    uint32_t cy0 = 0, cy1 = 0;
  };
  CellRange RangeOfBox(const geom::Box& b) const {
    CellRange r;
    r.cx0 = CoordToCell(b.xmin - universe_.xmin, universe_.Width());
    r.cx1 = CoordToCell(b.xmax - universe_.xmin, universe_.Width());
    r.cy0 = CoordToCell(universe_.ymax - b.ymax, universe_.Height());
    r.cy1 = CoordToCell(universe_.ymax - b.ymin, universe_.Height());
    return r;
  }

  /// Two-layer begin class of one (feature, tile) pair: A when the tile
  /// holds the MBR's reference point, B when the MBR spilled in along x
  /// only (begins in an earlier column of the same row), C along y only,
  /// D along both. Values match exec::TileClass (0..3).
  enum TileClass : uint8_t { kClassA = 0, kClassB = 1, kClassC = 2,
                             kClassD = 3 };
  uint8_t ClassAt(uint32_t tile, const CellRange& r) const {
    uint32_t cx = tile % tiles_per_axis_;
    uint32_t cy = tile / tiles_per_axis_;
    const bool x_spilled = cx != r.cx0;  // begins in an earlier column
    const bool y_spilled = cy != r.cy1;  // begins in a lower row
    return static_cast<uint8_t>((x_spilled ? 1 : 0) | (y_spilled ? 2 : 0));
  }

  /// CopyClassAt's "the node owns no overlapped tile" answer — a staged
  /// migration copy before its grid cutover, for example.
  static constexpr uint8_t kNoOwnedTile = 0xff;

  /// Strongest (A < B < C < D) class among `node`'s owned tiles that `b`
  /// overlaps — the class stored with the replica at that node, or
  /// kNoOwnedTile when the node owns none of them. A iff the node owns
  /// the begin tile, i.e. iff it holds the primary copy.
  uint8_t CopyClassAt(uint32_t node, const geom::Box& b) const {
    CellRange r = RangeOfBox(b);
    uint8_t best = kNoOwnedTile;
    for (uint32_t cy = r.cy0; cy <= r.cy1; ++cy) {
      for (uint32_t cx = r.cx0; cx <= r.cx1; ++cx) {
        uint32_t tile = cy * tiles_per_axis_ + cx;
        if (NodeOfTile(tile) != node) continue;
        best = std::min(best, ClassAt(tile, r));
      }
    }
    return best;
  }

  /// All tiles a box overlaps (the replication set).
  std::vector<uint32_t> TilesOfBox(const geom::Box& b) const {
    CellRange rg = RangeOfBox(b);
    uint32_t cx0 = rg.cx0, cx1 = rg.cx1, cy0 = rg.cy0, cy1 = rg.cy1;
    std::vector<uint32_t> tiles;
    tiles.reserve(static_cast<size_t>(cx1 - cx0 + 1) * (cy1 - cy0 + 1));
    for (uint32_t cy = cy0; cy <= cy1; ++cy) {
      for (uint32_t cx = cx0; cx <= cx1; ++cx) {
        tiles.push_back(cy * tiles_per_axis_ + cx);
      }
    }
    return tiles;
  }

  /// Distinct destination nodes for a feature with MBR `b`.
  std::vector<uint32_t> NodesOfBox(const geom::Box& b) const {
    std::vector<uint8_t> seen(max_node_ + 1, 0);
    std::vector<uint32_t> nodes;
    for (uint32_t t : TilesOfBox(b)) {
      uint32_t n = NodeOfTile(t);
      if (!seen[n]) {
        seen[n] = 1;
        nodes.push_back(n);
      }
    }
    return nodes;
  }

  /// The feature's reference point: the lower-left corner of its MBR
  /// (clamped into the universe). The tile containing it holds the
  /// *primary* copy; every query-time duplicate-elimination rule is
  /// phrased against this point.
  geom::Point ReferencePoint(const geom::Box& b) const {
    return ClampToUniverse(geom::Point{b.xmin, b.ymin});
  }

  uint32_t PrimaryTile(const geom::Box& b) const {
    return TileOfPoint(ReferencePoint(b));
  }
  uint32_t PrimaryNode(const geom::Box& b) const {
    return NodeOfTile(PrimaryTile(b));
  }

  geom::Point ClampToUniverse(const geom::Point& p) const {
    geom::Point q = p;
    q.x = std::min(std::max(q.x, universe_.xmin), universe_.xmax);
    q.y = std::min(std::max(q.y, universe_.ymin), universe_.ymax);
    return q;
  }

 private:
  void RebuildAliveNodes() {
    alive_nodes_.clear();
    for (uint32_t n = 0; n <= max_node_; ++n) {
      if (n >= dead_.size() || !dead_[n]) alive_nodes_.push_back(n);
    }
  }

  uint32_t CoordToCell(double offset, double extent) const {
    double f = offset / extent * tiles_per_axis_;
    if (f < 0) f = 0;
    uint32_t c = static_cast<uint32_t>(f);
    return std::min(c, tiles_per_axis_ - 1);
  }

  geom::Box universe_;
  uint32_t tiles_per_axis_ = 1;
  uint32_t num_nodes_ = 1;
  uint32_t max_node_ = 0;
  uint64_t epoch_ = 0;
  // Planned tile->owner overrides (migration cutovers); consulted
  // before the base hash.
  std::unordered_map<uint32_t, uint32_t> reassigned_;
  std::vector<uint8_t> dead_;           // empty until a node dies
  std::vector<uint32_t> alive_nodes_;  // ascending; empty until a node dies
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_SPATIAL_GRID_H_
