#ifndef PARADISE_CORE_TABLE_H_
#define PARADISE_CORE_TABLE_H_

#include <map>
#include <memory>
#include <vector>

#include "catalog/catalog.h"
#include "core/cluster.h"
#include "core/spatial_grid.h"
#include "exec/tuple.h"
#include "index/b_plus_tree.h"
#include "index/r_star_tree.h"
#include "storage/heap_file.h"

namespace paradise::core {

/// A table fully partitioned across the cluster (Section 2.3): one
/// fragment (heap file + local indexes) per node. Spatially declustered
/// tables replicate tuples that span tiles mapped to multiple nodes; each
/// replica carries a *primary* flag (true at the node owning the tuple's
/// reference-point tile), which non-spatial operations use to avoid
/// double-counting.
class ParallelTable {
 public:
  struct Fragment {
    std::unique_ptr<storage::HeapFile> file;
    std::vector<storage::Oid> oids;  // row id -> record
    std::vector<uint8_t> primary;    // row id -> primary flag
    /// Local indexes (built at load over this fragment only).
    std::unique_ptr<index::RStarTree> rtree;  // on the spatial index column
    std::map<size_t, index::BPlusTree<std::string>> string_indexes;
    std::map<size_t, index::BPlusTree<int64_t>> int_indexes;

    int64_t num_rows() const { return static_cast<int64_t>(oids.size()); }
  };

  /// Declusters `rows` across the cluster per `def.partitioning`, writes
  /// each fragment into a heap file on its node (charging load I/O), and
  /// builds the indexes `def.indexes` names. For spatial declustering,
  /// `def.universe` must be set (or it is computed from the data).
  /// `explicit_owners`, when non-null, overrides round-robin placement
  /// with a caller-chosen node per row (e.g. to colocate a raster tuple
  /// with its pre-placed tiles while decorrelating channel and node).
  static StatusOr<std::unique_ptr<ParallelTable>> Load(
      Cluster* cluster, catalog::TableDef def,
      const std::vector<exec::Tuple>& rows,
      uint32_t tiles_per_axis = SpatialGrid::kDefaultTilesPerAxis,
      const std::vector<uint32_t>* explicit_owners = nullptr);

  /// Degraded-mode repair after a permanent node loss (the node must
  /// already be dead in `cluster`): salvages the dead node's fragment off
  /// its surviving disks and redistributes the rows over the alive nodes
  /// so every query answer stays complete at N−1.
  ///
  ///  - Round-robin / hash tables stripe the salvaged rows over the
  ///    survivors; raster attributes are deep-copied to the new owner.
  ///  - Spatially declustered tables remap the dead node's grid tiles
  ///    over the survivors (SpatialGrid::MarkNodeDead) and ship each
  ///    salvaged row to the new owners of its overlapped remapped tiles.
  ///    A survivor that already holds a replica keeps it (promoted to
  ///    primary when the dead node held the primary copy) instead of
  ///    storing a duplicate.
  ///
  /// All salvage reads, inserts, index maintenance, and transfers are
  /// charged to the virtual clocks — the honest cost of degraded mode.
  /// Single-threaded; call between phases (the coordinator's node-loss
  /// handler does).
  Status RedeclusterAfterLoss(Cluster* cluster, int dead_node);

  const catalog::TableDef& def() const { return def_; }
  const SpatialGrid& grid() const { return grid_; }
  int num_fragments() const { return static_cast<int>(fragments_.size()); }
  Fragment& fragment(int node) { return *fragments_[node]; }
  const Fragment& fragment(int node) const { return *fragments_[node]; }

  /// Total primary tuples (the logical table cardinality).
  int64_t num_rows() const;
  /// Total stored tuples including replicas.
  int64_t num_stored() const;

  /// Sequential scan of node `node`'s fragment through its heap file
  /// (charges that node's disk sequentially + per-tuple CPU). When
  /// `primaries_only`, replicated copies are skipped — correct for
  /// non-spatial queries.
  StatusOr<exec::TupleVec> ScanFragment(Cluster* cluster, int node,
                                        bool primaries_only) const;

  /// Random fetch of one row by id (index probe path): charges one random
  /// page read.
  StatusOr<exec::Tuple> FetchRow(Cluster* cluster, int node,
                                 uint64_t row) const;

  bool IsPrimary(int node, uint64_t row) const {
    return fragments_[node]->primary[row] != 0;
  }

  /// Average *shallow* tuple bytes (what redistribution moves).
  double avg_tuple_bytes() const { return avg_tuple_bytes_; }

 private:
  ParallelTable() = default;

  catalog::TableDef def_;
  SpatialGrid grid_;  // valid iff def_.partitioning == kSpatial
  std::vector<std::unique_ptr<Fragment>> fragments_;
  double avg_tuple_bytes_ = 0.0;
  static uint32_t next_file_id_;
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_TABLE_H_
