#ifndef PARADISE_CORE_TABLE_H_
#define PARADISE_CORE_TABLE_H_

#include <array>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "core/cluster.h"
#include "core/spatial_grid.h"
#include "exec/tuple.h"
#include "index/b_plus_tree.h"
#include "index/r_star_tree.h"
#include "storage/heap_file.h"

namespace paradise::core {

/// A table fully partitioned across the cluster (Section 2.3): one
/// fragment (heap file + local indexes) per node. Spatially declustered
/// tables replicate tuples that span tiles mapped to multiple nodes; each
/// replica carries a *primary* flag (true at the node owning the tuple's
/// reference-point tile), which non-spatial operations use to avoid
/// double-counting. kTwoLayer tables store the same replication set but
/// additionally keep each copy's two-layer begin class
/// (SpatialGrid::CopyClassAt) in the upper bits of the record flag byte,
/// so class-partitioned joins can skip reference-point dedup entirely.
class ParallelTable {
 public:
  struct Fragment {
    std::unique_ptr<storage::HeapFile> file;
    std::vector<storage::Oid> oids;  // row id -> record
    std::vector<uint8_t> primary;    // row id -> primary flag
    /// Row id -> two-layer begin class (kTwoLayer tables only; empty
    /// otherwise). Mirrors bits 1..2 of the stored record's flag byte,
    /// like `primary` mirrors bit 0.
    std::vector<uint8_t> cls;
    /// Row liveness; empty means "all rows live". Migration GC and
    /// staging rollback physically delete records but must keep row ids
    /// stable (indexes and oids vectors are positional), so deleted rows
    /// are tombstoned here instead of erased.
    std::vector<uint8_t> live;
    /// Local indexes (built at load over this fragment only).
    std::unique_ptr<index::RStarTree> rtree;  // on the spatial index column
    std::map<size_t, index::BPlusTree<std::string>> string_indexes;
    std::map<size_t, index::BPlusTree<int64_t>> int_indexes;
    /// Lazily built content-key -> row ids map (the dedup index the
    /// migration/salvage paths consult so a node that already holds a
    /// replica never stores a duplicate). Maintained by every migration
    /// mutation once built; nullptr until first needed.
    std::unique_ptr<std::unordered_map<std::string, std::vector<uint64_t>>>
        contents;

    int64_t num_rows() const { return static_cast<int64_t>(oids.size()); }
    uint8_t row_class(uint64_t r) const { return cls.empty() ? 0 : cls[r]; }
    bool row_live(uint64_t r) const { return live.empty() || live[r] != 0; }
    int64_t num_live() const {
      if (live.empty()) return num_rows();
      int64_t n = 0;
      for (uint8_t l : live) n += l;
      return n;
    }
  };

  /// Declusters `rows` across the cluster per `def.partitioning`, writes
  /// each fragment into a heap file on its node (charging load I/O), and
  /// builds the indexes `def.indexes` names. For spatial declustering,
  /// `def.universe` must be set (or it is computed from the data).
  /// `explicit_owners`, when non-null, overrides round-robin placement
  /// with a caller-chosen node per row (e.g. to colocate a raster tuple
  /// with its pre-placed tiles while decorrelating channel and node).
  static StatusOr<std::unique_ptr<ParallelTable>> Load(
      Cluster* cluster, catalog::TableDef def,
      const std::vector<exec::Tuple>& rows,
      uint32_t tiles_per_axis = SpatialGrid::kDefaultTilesPerAxis,
      const std::vector<uint32_t>* explicit_owners = nullptr);

  /// Rebuilds and republishes this table's optimizer statistics
  /// (opt::HistogramStats in the cluster catalog) from charged fragment
  /// scans — the honest path after the load-time stats were invalidated
  /// by mutation, redecluster, or migration. No-op for non-spatial
  /// tables.
  Status RebuildStats(Cluster* cluster);

  /// Degraded-mode repair after a permanent node loss (the node must
  /// already be dead in `cluster`). This is now a *degenerate topology
  /// change* — a zero-throttle migration with a dead source — delegated
  /// to the cluster's TopologyManager (MigrateForLoss), which in turn
  /// runs SalvageDeadNode below. Kept as the entry point the
  /// coordinator's node-loss handler calls.
  Status RedeclusterAfterLoss(Cluster* cluster, int dead_node);

  /// The salvage half of a loss-migration: sequentially reads the dead
  /// node's fragment off its surviving disks and redistributes the rows
  /// over the alive nodes so every query answer stays complete at N−1.
  ///
  ///  - Round-robin / hash tables stripe the salvaged rows over the
  ///    survivors; raster attributes are deep-copied to the new owner.
  ///  - Spatially declustered tables remap the dead node's grid tiles
  ///    over the survivors (SpatialGrid::MarkNodeDead) and ship each
  ///    salvaged row to the new owners of its overlapped remapped tiles.
  ///    A survivor that already holds a replica keeps it (promoted to
  ///    primary when the dead node held the primary copy) instead of
  ///    storing a duplicate — the same content-index dedup the planned
  ///    migration path uses, which is what makes a crashed migration
  ///    exactly-once: rolled-back or re-shipped copies can never double.
  ///
  /// All salvage reads, inserts, index maintenance, and transfers are
  /// charged to the virtual clocks — the honest cost of degraded mode.
  /// Single-threaded; call between phases.
  Status SalvageDeadNode(Cluster* cluster, int dead_node);

  // -- Online tile migration (driven by core::TopologyManager) ------------

  /// One staged (shipped but not yet cut over) tile or stripe move.
  struct StagedRowRef {
    uint64_t row = 0;     // row id in its fragment
    geom::Box mbr;        // partition-column MBR (spatial tables)
    ByteBuffer record;    // stored record bytes (flag byte included)
  };
  struct StagedMove {
    uint32_t tile = 0;    // spatial moves only
    int source = -1;
    int target = -1;
    /// Live rows at the source that the move covers.
    std::vector<StagedRowRef> source_rows;
    /// All copies at the target the move relies on: newly staged inserts
    /// plus pre-existing replicas claimed by the dedup index.
    std::vector<StagedRowRef> target_rows;
    /// Subset of target_rows that were newly inserted (rollback set).
    std::vector<uint64_t> inserted_rows;
    int64_t bytes = 0;          // shallow bytes shipped (one batch charge)
    int64_t rows_shipped = 0;   // newly inserted copies
    int64_t rows_deduped = 0;   // pre-existing replicas claimed instead
    bool empty() const { return source_rows.empty() && target_rows.empty(); }
  };

  /// Grows the fragment vector to cluster->num_nodes() with empty,
  /// registered heap files (scale-out onto added nodes).
  Status EnsureFragments(Cluster* cluster);

  /// Ships every live row at `source` overlapping grid tile `tile` to
  /// `target` as a *non-primary* staged copy (invisible to primaries-only
  /// scans, filtered by the reference-point rule in joins until cutover).
  /// Copies the target already holds are claimed, not duplicated. Reads,
  /// inserts, index maintenance and the batched transfer are all charged.
  StatusOr<StagedMove> StageTileRows(Cluster* cluster, uint32_t tile,
                                     int source, int target);

  /// Non-spatial analog: ships stripe `stripe_index` (of `stripe_count`)
  /// of `source`'s live rows to `target` as staged non-primary copies;
  /// raster attributes are deep-copied.
  StatusOr<StagedMove> StageStripeRows(Cluster* cluster, int source,
                                       int target, size_t stripe_index,
                                       size_t stripe_count);

  /// Rolls back a staged move: physically deletes the newly inserted
  /// copies at the target (crash mid-transfer; the tile stays owned by
  /// its old home, exactly once).
  Status UnstageMove(Cluster* cluster, const StagedMove& st);

  /// Commits a staged move *after* the grid has been repointed at the
  /// new owner: recomputes primary flags on both sides and returns the
  /// source rows that no longer overlap any source-owned tile (their
  /// physical deletion is deferred until no query pins an older epoch).
  struct CutoverResult {
    std::vector<uint64_t> orphaned_source_rows;
  };
  StatusOr<CutoverResult> CutoverMove(Cluster* cluster,
                                      const StagedMove& st);

  /// Physically deletes rows previously orphaned by a cutover (epoch GC)
  /// or rolled back. Charged to `node`'s clock.
  Status DropRows(Cluster* cluster, int node,
                  const std::vector<uint64_t>& rows);

  /// Deferred-GC drop with re-validation: a row queued as orphaned at
  /// cutover time may have been re-claimed since — a later move whose
  /// target is this node (crash retargets aim at existing replica
  /// holders) dedups against it or even re-promotes it to primary. Drops
  /// only rows that are still non-primary and overlap no tile this node
  /// owns under the *current* grid; returns how many were dropped.
  StatusOr<int64_t> DropOrphanedRows(Cluster* cluster, int node,
                                     const std::vector<uint64_t>& rows);

  /// Exactly-once ownership audit: every live row's primary flag matches
  /// the grid, a copy exists at every alive owner of an overlapped tile,
  /// and the logical cardinality equals the loaded row count (nothing
  /// lost, nothing duplicated). Read charges apply.
  Status ValidateOwnership(Cluster* cluster) const;

  SpatialGrid* mutable_grid() { return &grid_; }

  const catalog::TableDef& def() const { return def_; }
  const SpatialGrid& grid() const { return grid_; }
  int num_fragments() const { return static_cast<int>(fragments_.size()); }
  Fragment& fragment(int node) { return *fragments_[node]; }
  const Fragment& fragment(int node) const { return *fragments_[node]; }

  /// Total primary tuples (the logical table cardinality).
  int64_t num_rows() const;
  /// Total stored tuples including replicas.
  int64_t num_stored() const;

  /// Sequential scan of node `node`'s fragment through its heap file
  /// (charges that node's disk sequentially + per-tuple CPU). When
  /// `primaries_only`, replicated copies are skipped — correct for
  /// non-spatial queries.
  StatusOr<exec::TupleVec> ScanFragment(Cluster* cluster, int node,
                                        bool primaries_only) const;

  /// Random fetch of one row by id (index probe path): charges one random
  /// page read.
  StatusOr<exec::Tuple> FetchRow(Cluster* cluster, int node,
                                 uint64_t row) const;

  bool IsPrimary(int node, uint64_t row) const {
    return fragments_[node]->primary[row] != 0;
  }

  /// The shared replica-dedup predicate: true iff this node's copy is the
  /// one a "count each logical row once" operation must keep. Every
  /// manual dedup site (scans, broadcast-join probes, aggregates) routes
  /// through here instead of reading the primary flag directly, so the
  /// keep-rule has exactly one definition.
  bool PrimaryFilter(int node, uint64_t row) const {
    return fragments_[node]->primary[row] != 0;
  }

  /// Stored-copy census per two-layer begin class over live rows of alive
  /// fragments ([A, B, C, D]; all counts land in A for non-kTwoLayer
  /// tables, whose copies carry no class).
  std::array<int64_t, 4> ClassCounts() const;

  /// Average *shallow* tuple bytes (what redistribution moves).
  double avg_tuple_bytes() const { return avg_tuple_bytes_; }

 private:
  ParallelTable() = default;

  /// Appends one migrated/salvaged copy to `node`'s fragment: rasters
  /// are deep-copied to the node, the record's primary byte is set to
  /// `make_primary`, local indexes and the contents map (if built) are
  /// maintained, and insert CPU is charged. Returns the new row id and
  /// the shallow record bytes (what a transfer batch carries).
  struct InsertOutcome {
    uint64_t row = 0;
    int64_t bytes = 0;
  };
  StatusOr<InsertOutcome> InsertMigratedRow(Cluster* cluster, int node,
                                            const exec::Tuple& row,
                                            const ByteBuffer& record,
                                            bool make_primary);

  /// Builds fragment `node`'s content-key index if absent (one charged
  /// fragment read, like the old per-salvage survivor content map — but
  /// persistent and incrementally maintained afterwards).
  Status EnsureContents(Cluster* cluster, int node);

  /// Flips the primary byte of row `row`'s stored record in place, syncs
  /// the flag vector, and charges the flip.
  Status SetRowPrimary(Cluster* cluster, int node, uint64_t row, bool primary);

  /// Recomputes row `row`'s flag byte (primary bit + two-layer class)
  /// from the *current* grid and rewrites the stored record only when it
  /// changed (no-op, no charge otherwise). The migration/salvage flag
  /// maintenance point for both spatial decluster modes: under kSpatial
  /// it degenerates to the primary-bit update SetRowPrimary performs.
  Status RefreshRowFlags(Cluster* cluster, int node, uint64_t row,
                         const geom::Box& mbr);

  catalog::TableDef def_;
  SpatialGrid grid_;  // valid iff IsSpatialPartitioning(def_.partitioning)
  std::vector<std::unique_ptr<Fragment>> fragments_;
  double avg_tuple_bytes_ = 0.0;
  static uint32_t next_file_id_;
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_TABLE_H_
