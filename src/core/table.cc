#include "core/table.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "array/chunked_array.h"
#include "array/raster.h"
#include "common/logging.h"
#include "core/pull.h"
#include "sim/cost_model.h"

namespace paradise::core {

using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;

uint32_t ParallelTable::next_file_id_ = 1;

namespace {

ByteBuffer EncodeRow(const Tuple& tuple, bool primary) {
  ByteBuffer out;
  ByteWriter w(&out);
  w.PutU8(primary ? 1 : 0);
  tuple.Serialize(&w);
  return out;
}

Tuple DecodeRow(const ByteBuffer& record, bool* primary) {
  ByteReader r(record);
  *primary = r.GetU8() != 0;
  return Tuple::Deserialize(&r);
}

/// Content key of a stored record: the serialized tuple without the
/// primary flag, so a primary copy and its replicas compare equal.
std::string RecordKey(const ByteBuffer& record) {
  PARADISE_CHECK(!record.empty());
  return std::string(record.begin() + 1, record.end());
}

}  // namespace

StatusOr<std::unique_ptr<ParallelTable>> ParallelTable::Load(
    Cluster* cluster, catalog::TableDef def, const std::vector<Tuple>& rows,
    uint32_t tiles_per_axis, const std::vector<uint32_t>* explicit_owners) {
  auto table = std::unique_ptr<ParallelTable>(new ParallelTable());
  int num_nodes = cluster->num_nodes();

  // Spatial declustering needs a universe; compute it if absent.
  if (def.partitioning == catalog::PartitioningKind::kSpatial) {
    if (def.universe.IsEmpty()) {
      for (const Tuple& t : rows) {
        def.universe.ExpandToInclude(t.at(def.partition_column).Mbr());
      }
    }
    table->grid_ = SpatialGrid(def.universe, tiles_per_axis,
                               static_cast<uint32_t>(num_nodes));
  }

  for (int n = 0; n < num_nodes; ++n) {
    auto frag = std::make_unique<Fragment>();
    // Fragments stripe over the node's data volumes; use volume 0 as the
    // anchor (the volume layer already amortizes seeks for sequential
    // access, which is the dominant pattern).
    frag->file = std::make_unique<storage::HeapFile>(
        next_file_id_++, cluster->node(n).pool(),
        cluster->node(n).data_volume(n % cluster->node(n).num_data_volumes())
            ->volume_id(),
        cluster->node(n).log());
    // Registering with the node's transaction manager makes the fragment
    // recoverable after a crash (bulk-load inserts pass a null txn and
    // stay unlogged; only transactional updates hit the WAL).
    cluster->node(n).txn_manager()->RegisterFile(frag->file.get());
    table->fragments_.push_back(std::move(frag));
  }

  double total_bytes = 0.0;
  std::vector<uint32_t> destinations;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Tuple& row = rows[i];
    total_bytes += static_cast<double>(row.WireBytes());
    destinations.clear();
    uint32_t primary_node = 0;
    switch (def.partitioning) {
      case catalog::PartitioningKind::kRoundRobin:
        primary_node = explicit_owners != nullptr
                           ? (*explicit_owners)[i]
                           : static_cast<uint32_t>(i % num_nodes);
        destinations.push_back(primary_node);
        break;
      case catalog::PartitioningKind::kHash:
        primary_node = static_cast<uint32_t>(
            row.at(def.partition_column).Hash() % num_nodes);
        destinations.push_back(primary_node);
        break;
      case catalog::PartitioningKind::kSpatial: {
        geom::Box mbr = row.at(def.partition_column).Mbr();
        destinations = table->grid_.NodesOfBox(mbr);
        primary_node = table->grid_.PrimaryNode(mbr);
        break;
      }
    }
    for (uint32_t n : destinations) {
      Fragment& frag = *table->fragments_[n];
      bool primary = (n == primary_node);
      ByteBuffer record = EncodeRow(row, primary);
      PARADISE_CHECK_MSG(record.size() <= storage::HeapFile::MaxRecordSize(),
                         "tuple exceeds page capacity; use LOB attributes");
      PARADISE_ASSIGN_OR_RETURN(storage::Oid oid,
                                frag.file->Insert(nullptr, record));
      frag.oids.push_back(oid);
      frag.primary.push_back(primary ? 1 : 0);
    }
  }

  def.num_tuples = static_cast<int64_t>(rows.size());
  table->avg_tuple_bytes_ =
      rows.empty() ? 0.0 : total_bytes / static_cast<double>(rows.size());
  def.avg_tuple_bytes = table->avg_tuple_bytes_;

  // Build the declared indexes, fragment-local, from the stored rows.
  for (int n = 0; n < num_nodes; ++n) {
    Fragment& frag = *table->fragments_[n];
    if (def.indexes.empty()) continue;
    // Materialize the fragment once for index building.
    TupleVec local;
    local.reserve(frag.oids.size());
    for (const storage::Oid& oid : frag.oids) {
      PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(oid));
      bool primary;
      local.push_back(DecodeRow(rec, &primary));
    }
    for (const catalog::IndexDef& idx : def.indexes) {
      if (idx.spatial) {
        // Bulk load (packed) as in [DeWi94].
        std::vector<std::pair<geom::Box, uint64_t>> entries;
        entries.reserve(local.size());
        for (uint64_t r = 0; r < local.size(); ++r) {
          entries.emplace_back(local[r].at(idx.column).Mbr(), r);
        }
        frag.rtree = index::RStarTree::BulkLoadStr(std::move(entries));
      } else {
        ValueType t = def.schema.column(idx.column).type;
        if (t == ValueType::kString) {
          auto [it, unused] = frag.string_indexes.try_emplace(idx.column);
          for (uint64_t r = 0; r < local.size(); ++r) {
            it->second.Insert(local[r].at(idx.column).AsString(), r);
          }
        } else if (t == ValueType::kInt || t == ValueType::kDate) {
          auto [it, unused] = frag.int_indexes.try_emplace(idx.column);
          for (uint64_t r = 0; r < local.size(); ++r) {
            const Value& v = local[r].at(idx.column);
            int64_t key = t == ValueType::kInt
                              ? v.AsInt()
                              : v.AsDate().days_since_epoch();
            it->second.Insert(key, r);
          }
        } else {
          return Status::InvalidArgument("unsupported index column type");
        }
      }
    }
  }

  table->def_ = std::move(def);
  return table;
}

int64_t ParallelTable::num_rows() const {
  int64_t n = 0;
  for (const auto& f : fragments_) {
    for (uint8_t p : f->primary) n += p;
  }
  return n;
}

int64_t ParallelTable::num_stored() const {
  int64_t n = 0;
  for (const auto& f : fragments_) n += f->num_rows();
  return n;
}

StatusOr<TupleVec> ParallelTable::ScanFragment(Cluster* cluster, int node,
                                               bool primaries_only) const {
  const Fragment& frag = *fragments_[node];
  sim::NodeClock* clock = cluster->node(node).clock();
  TupleVec out;
  out.reserve(frag.oids.size());
  auto it = frag.file->NewIterator();
  storage::Oid oid;
  ByteBuffer record;
  while (it.Next(&oid, &record)) {
    clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                     sim::cpu_cost::kPerByteCopied *
                         static_cast<double>(record.size()));
    bool primary;
    Tuple t = DecodeRow(record, &primary);
    if (primaries_only && !primary) continue;
    out.push_back(std::move(t));
  }
  return out;
}

namespace {

/// Deep-copies a raster's tiles to `dest_node` (pull from the owner:
/// owner read + both links + destination write, all charged).
StatusOr<array::Raster> CopyRasterToNode(Cluster* cluster, int dest_node,
                                         const array::Raster& raster) {
  PullTileSource pull(cluster, static_cast<uint32_t>(dest_node));
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer data,
                            array::ReadFull(raster.handle, &pull));
  Node& dest = cluster->node(dest_node);
  array::Raster copy;
  copy.geo = raster.geo;
  PARADISE_ASSIGN_OR_RETURN(
      copy.handle,
      array::StoreArray(data.data(), raster.handle.dims,
                        raster.handle.elem_size, dest.lob_store(),
                        dest.clock(), /*compress=*/true,
                        array::kDefaultTileBytes,
                        static_cast<uint32_t>(dest_node)));
  return copy;
}

}  // namespace

Status ParallelTable::RedeclusterAfterLoss(Cluster* cluster, int dead_node) {
  PARADISE_CHECK_MSG(!cluster->alive(dead_node),
                     "redecluster target must be marked dead first");
  Fragment& dead = *fragments_[dead_node];
  sim::NodeClock* dead_clock = cluster->node(dead_node).clock();
  const std::vector<int> survivors = cluster->alive_node_ids();
  PARADISE_CHECK(!survivors.empty());

  const bool spatial =
      def_.partitioning == catalog::PartitioningKind::kSpatial;
  if (spatial && !grid_.node_dead(static_cast<uint32_t>(dead_node))) {
    grid_.MarkNodeDead(static_cast<uint32_t>(dead_node));
  }

  // 1. Salvage: sequentially read the dead fragment off its surviving
  //    disks (the node is gone; its disks are not), charging the salvage
  //    station's clock.
  struct Salvaged {
    Tuple tuple;
    ByteBuffer record;
    bool primary = false;
  };
  std::vector<Salvaged> salvaged;
  salvaged.reserve(dead.oids.size());
  {
    auto it = dead.file->NewIterator();
    storage::Oid oid;
    ByteBuffer record;
    while (it.Next(&oid, &record)) {
      dead_clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                            sim::cpu_cost::kPerByteCopied *
                                static_cast<double>(record.size()));
      Salvaged s;
      s.tuple = DecodeRow(record, &s.primary);
      s.record = std::move(record);
      salvaged.push_back(std::move(s));
    }
  }

  // 2. For spatially declustered tables, survivors that already hold a
  //    replica must keep it instead of storing a duplicate. Build each
  //    survivor's content map once (a fragment read — part of the honest
  //    integration cost).
  std::unordered_map<int, std::unordered_map<std::string,
                                             std::vector<uint64_t>>>
      survivor_contents;
  if (spatial && !salvaged.empty()) {
    for (int d : survivors) {
      Fragment& frag = *fragments_[d];
      sim::NodeClock* clock = cluster->node(d).clock();
      auto& contents = survivor_contents[d];
      contents.reserve(frag.oids.size());
      for (uint64_t r = 0; r < frag.oids.size(); ++r) {
        PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec,
                                  frag.file->Get(frag.oids[r]));
        clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                         sim::cpu_cost::kHash);
        contents[RecordKey(rec)].push_back(r);
      }
    }
  }

  // Appends `record` (whose tuple is `row`) to survivor `d`'s fragment
  // and maintains its local indexes.
  auto insert_row = [&](int d, const Tuple& row,
                        const ByteBuffer& record) -> Status {
    Fragment& frag = *fragments_[d];
    PARADISE_ASSIGN_OR_RETURN(storage::Oid oid,
                              frag.file->Insert(nullptr, record));
    frag.oids.push_back(oid);
    frag.primary.push_back(record[0]);
    const uint64_t r = frag.oids.size() - 1;
    sim::NodeClock* clock = cluster->node(d).clock();
    clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                     sim::cpu_cost::kPerByteCopied *
                         static_cast<double>(record.size()));
    for (const catalog::IndexDef& idx : def_.indexes) {
      clock->ChargeCpu(sim::cpu_cost::kIndexProbe);
      if (idx.spatial) {
        if (frag.rtree == nullptr) {
          frag.rtree = std::make_unique<index::RStarTree>();
        }
        frag.rtree->Insert(row.at(idx.column).Mbr(), r);
      } else {
        ValueType t = def_.schema.column(idx.column).type;
        if (t == ValueType::kString) {
          frag.string_indexes[idx.column].Insert(
              row.at(idx.column).AsString(), r);
        } else {
          const Value& v = row.at(idx.column);
          int64_t key = t == ValueType::kInt
                            ? v.AsInt()
                            : v.AsDate().days_since_epoch();
          frag.int_indexes[idx.column].Insert(key, r);
        }
      }
    }
    return Status::OK();
  };

  // 3. Route every salvaged row to its post-loss owners.
  std::unordered_map<int, int64_t> shipped_bytes;
  size_t stripe = 0;  // round-robin cursor over survivors
  for (Salvaged& s : salvaged) {
    std::vector<uint32_t> dests;
    uint32_t primary_node = 0;
    if (spatial) {
      geom::Box mbr = s.tuple.at(def_.partition_column).Mbr();
      // The new owners of the dead node's tiles that this row overlapped.
      for (uint32_t t : grid_.TilesOfBox(mbr)) {
        if (grid_.BaseNodeOfTile(t) == static_cast<uint32_t>(dead_node)) {
          dests.push_back(grid_.NodeOfTile(t));
        }
      }
      std::sort(dests.begin(), dests.end());
      dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
      primary_node = grid_.PrimaryNode(mbr);
    } else {
      // Round-robin and hash tables stripe the lost rows over survivors
      // (the original hash function maps to the dead node).
      dests.push_back(
          static_cast<uint32_t>(survivors[stripe++ % survivors.size()]));
      primary_node = dests[0];
    }

    for (uint32_t dest : dests) {
      const int d = static_cast<int>(dest);
      const bool make_primary = s.primary && dest == primary_node;
      if (spatial) {
        auto contents_it = survivor_contents.find(d);
        if (contents_it != survivor_contents.end()) {
          auto match = contents_it->second.find(RecordKey(s.record));
          if (match != contents_it->second.end() &&
              !match->second.empty()) {
            // The survivor already holds a replica; consume it and, when
            // the dead node held the primary copy, promote it in place.
            uint64_t r = match->second.back();
            match->second.pop_back();
            if (make_primary) {
              Fragment& frag = *fragments_[d];
              ByteBuffer promoted = s.record;
              promoted[0] = 1;
              PARADISE_RETURN_IF_ERROR(
                  frag.file->Update(nullptr, frag.oids[r], promoted));
              frag.primary[r] = 1;
              cluster->node(d).clock()->ChargeCpu(
                  sim::cpu_cost::kTupleOverhead);
            }
            continue;
          }
        }
      }
      Tuple row = s.tuple;  // shallow copy; rasters deep-copied below
      ByteBuffer record;
      bool reencode = false;
      for (Value& v : row.values) {
        if (v.type() == ValueType::kRaster) {
          PARADISE_ASSIGN_OR_RETURN(
              array::Raster moved, CopyRasterToNode(cluster, d, *v.AsRaster()));
          v = Value(std::move(moved));
          reencode = true;
        }
      }
      if (reencode) {
        record = EncodeRow(row, make_primary);
      } else {
        record = s.record;
        record[0] = make_primary ? 1 : 0;
      }
      shipped_bytes[d] += static_cast<int64_t>(record.size());
      PARADISE_RETURN_IF_ERROR(insert_row(d, row, record));
    }
  }

  // Ship the shallow tuple bytes over the salvage station's link, batched
  // per destination (raster tiles were charged by the pull copies).
  for (const auto& [d, bytes] : shipped_bytes) {
    cluster->ChargeTransfer(static_cast<uint32_t>(dead_node),
                            static_cast<uint32_t>(d), bytes);
  }

  // 4. Decommission the dead fragment so nothing can double-read it. The
  //    heap file object stays alive (it is registered with the node's
  //    transaction manager) but holds no records.
  for (const storage::Oid& oid : dead.oids) {
    PARADISE_RETURN_IF_ERROR(dead.file->Delete(nullptr, oid));
  }
  dead.oids.clear();
  dead.primary.clear();
  dead.rtree.reset();
  dead.string_indexes.clear();
  dead.int_indexes.clear();
  return Status::OK();
}

StatusOr<Tuple> ParallelTable::FetchRow(Cluster* cluster, int node,
                                        uint64_t row) const {
  const Fragment& frag = *fragments_[node];
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer record, frag.file->Get(frag.oids[row]));
  cluster->node(node).clock()->ChargeCpu(
      sim::cpu_cost::kTupleOverhead +
      sim::cpu_cost::kPerByteCopied * static_cast<double>(record.size()));
  bool primary;
  return DecodeRow(record, &primary);
}

}  // namespace paradise::core
