#include "core/table.h"

#include "common/logging.h"
#include "sim/cost_model.h"

namespace paradise::core {

using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;

uint32_t ParallelTable::next_file_id_ = 1;

namespace {

ByteBuffer EncodeRow(const Tuple& tuple, bool primary) {
  ByteBuffer out;
  ByteWriter w(&out);
  w.PutU8(primary ? 1 : 0);
  tuple.Serialize(&w);
  return out;
}

Tuple DecodeRow(const ByteBuffer& record, bool* primary) {
  ByteReader r(record);
  *primary = r.GetU8() != 0;
  return Tuple::Deserialize(&r);
}

}  // namespace

StatusOr<std::unique_ptr<ParallelTable>> ParallelTable::Load(
    Cluster* cluster, catalog::TableDef def, const std::vector<Tuple>& rows,
    uint32_t tiles_per_axis, const std::vector<uint32_t>* explicit_owners) {
  auto table = std::unique_ptr<ParallelTable>(new ParallelTable());
  int num_nodes = cluster->num_nodes();

  // Spatial declustering needs a universe; compute it if absent.
  if (def.partitioning == catalog::PartitioningKind::kSpatial) {
    if (def.universe.IsEmpty()) {
      for (const Tuple& t : rows) {
        def.universe.ExpandToInclude(t.at(def.partition_column).Mbr());
      }
    }
    table->grid_ = SpatialGrid(def.universe, tiles_per_axis,
                               static_cast<uint32_t>(num_nodes));
  }

  for (int n = 0; n < num_nodes; ++n) {
    auto frag = std::make_unique<Fragment>();
    // Fragments stripe over the node's data volumes; use volume 0 as the
    // anchor (the volume layer already amortizes seeks for sequential
    // access, which is the dominant pattern).
    frag->file = std::make_unique<storage::HeapFile>(
        next_file_id_++, cluster->node(n).pool(),
        cluster->node(n).data_volume(n % cluster->node(n).num_data_volumes())
            ->volume_id(),
        /*log=*/nullptr);
    table->fragments_.push_back(std::move(frag));
  }

  double total_bytes = 0.0;
  std::vector<uint32_t> destinations;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Tuple& row = rows[i];
    total_bytes += static_cast<double>(row.WireBytes());
    destinations.clear();
    uint32_t primary_node = 0;
    switch (def.partitioning) {
      case catalog::PartitioningKind::kRoundRobin:
        primary_node = explicit_owners != nullptr
                           ? (*explicit_owners)[i]
                           : static_cast<uint32_t>(i % num_nodes);
        destinations.push_back(primary_node);
        break;
      case catalog::PartitioningKind::kHash:
        primary_node = static_cast<uint32_t>(
            row.at(def.partition_column).Hash() % num_nodes);
        destinations.push_back(primary_node);
        break;
      case catalog::PartitioningKind::kSpatial: {
        geom::Box mbr = row.at(def.partition_column).Mbr();
        destinations = table->grid_.NodesOfBox(mbr);
        primary_node = table->grid_.PrimaryNode(mbr);
        break;
      }
    }
    for (uint32_t n : destinations) {
      Fragment& frag = *table->fragments_[n];
      bool primary = (n == primary_node);
      ByteBuffer record = EncodeRow(row, primary);
      PARADISE_CHECK_MSG(record.size() <= storage::HeapFile::MaxRecordSize(),
                         "tuple exceeds page capacity; use LOB attributes");
      PARADISE_ASSIGN_OR_RETURN(storage::Oid oid,
                                frag.file->Insert(nullptr, record));
      frag.oids.push_back(oid);
      frag.primary.push_back(primary ? 1 : 0);
    }
  }

  def.num_tuples = static_cast<int64_t>(rows.size());
  table->avg_tuple_bytes_ =
      rows.empty() ? 0.0 : total_bytes / static_cast<double>(rows.size());
  def.avg_tuple_bytes = table->avg_tuple_bytes_;

  // Build the declared indexes, fragment-local, from the stored rows.
  for (int n = 0; n < num_nodes; ++n) {
    Fragment& frag = *table->fragments_[n];
    if (def.indexes.empty()) continue;
    // Materialize the fragment once for index building.
    TupleVec local;
    local.reserve(frag.oids.size());
    for (const storage::Oid& oid : frag.oids) {
      PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(oid));
      bool primary;
      local.push_back(DecodeRow(rec, &primary));
    }
    for (const catalog::IndexDef& idx : def.indexes) {
      if (idx.spatial) {
        // Bulk load (packed) as in [DeWi94].
        std::vector<std::pair<geom::Box, uint64_t>> entries;
        entries.reserve(local.size());
        for (uint64_t r = 0; r < local.size(); ++r) {
          entries.emplace_back(local[r].at(idx.column).Mbr(), r);
        }
        frag.rtree = index::RStarTree::BulkLoadStr(std::move(entries));
      } else {
        ValueType t = def.schema.column(idx.column).type;
        if (t == ValueType::kString) {
          auto [it, unused] = frag.string_indexes.try_emplace(idx.column);
          for (uint64_t r = 0; r < local.size(); ++r) {
            it->second.Insert(local[r].at(idx.column).AsString(), r);
          }
        } else if (t == ValueType::kInt || t == ValueType::kDate) {
          auto [it, unused] = frag.int_indexes.try_emplace(idx.column);
          for (uint64_t r = 0; r < local.size(); ++r) {
            const Value& v = local[r].at(idx.column);
            int64_t key = t == ValueType::kInt
                              ? v.AsInt()
                              : v.AsDate().days_since_epoch();
            it->second.Insert(key, r);
          }
        } else {
          return Status::InvalidArgument("unsupported index column type");
        }
      }
    }
  }

  table->def_ = std::move(def);
  return table;
}

int64_t ParallelTable::num_rows() const {
  int64_t n = 0;
  for (const auto& f : fragments_) {
    for (uint8_t p : f->primary) n += p;
  }
  return n;
}

int64_t ParallelTable::num_stored() const {
  int64_t n = 0;
  for (const auto& f : fragments_) n += f->num_rows();
  return n;
}

StatusOr<TupleVec> ParallelTable::ScanFragment(Cluster* cluster, int node,
                                               bool primaries_only) const {
  const Fragment& frag = *fragments_[node];
  sim::NodeClock* clock = cluster->node(node).clock();
  TupleVec out;
  out.reserve(frag.oids.size());
  auto it = frag.file->NewIterator();
  storage::Oid oid;
  ByteBuffer record;
  while (it.Next(&oid, &record)) {
    clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                     sim::cpu_cost::kPerByteCopied *
                         static_cast<double>(record.size()));
    bool primary;
    Tuple t = DecodeRow(record, &primary);
    if (primaries_only && !primary) continue;
    out.push_back(std::move(t));
  }
  return out;
}

StatusOr<Tuple> ParallelTable::FetchRow(Cluster* cluster, int node,
                                        uint64_t row) const {
  const Fragment& frag = *fragments_[node];
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer record, frag.file->Get(frag.oids[row]));
  cluster->node(node).clock()->ChargeCpu(
      sim::cpu_cost::kTupleOverhead +
      sim::cpu_cost::kPerByteCopied * static_cast<double>(record.size()));
  bool primary;
  return DecodeRow(record, &primary);
}

}  // namespace paradise::core
