#include "core/table.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "array/chunked_array.h"
#include "array/raster.h"
#include "common/logging.h"
#include "core/pull.h"
#include "core/topology.h"
#include "sim/cost_model.h"

namespace paradise::core {

using exec::Tuple;
using exec::TupleVec;
using exec::Value;
using exec::ValueType;

uint32_t ParallelTable::next_file_id_ = 1;

namespace {

/// Record flag byte: bit 0 = primary, bits 1..2 = two-layer begin class.
/// Legacy decluster modes always write class 0, so their flag byte stays
/// the exact 0/1 it has always been.
uint8_t FlagByte(bool primary, uint8_t cls) {
  return static_cast<uint8_t>((cls << 1) | (primary ? 1 : 0));
}

ByteBuffer EncodeRow(const Tuple& tuple, bool primary, uint8_t cls = 0) {
  ByteBuffer out;
  ByteWriter w(&out);
  w.PutU8(FlagByte(primary, cls));
  tuple.Serialize(&w);
  return out;
}

Tuple DecodeRow(const ByteBuffer& record, bool* primary) {
  ByteReader r(record);
  *primary = (r.GetU8() & 1) != 0;
  return Tuple::Deserialize(&r);
}

/// Class bits of a stored record's flag byte.
uint8_t RecordClass(const ByteBuffer& record) {
  PARADISE_CHECK(!record.empty());
  return static_cast<uint8_t>(record[0] >> 1);
}

/// Content key of a stored record: the serialized tuple without the
/// flag byte, so a primary copy and its replicas — whatever their class
/// bits — compare equal.
std::string RecordKey(const ByteBuffer& record) {
  PARADISE_CHECK(!record.empty());
  return std::string(record.begin() + 1, record.end());
}

/// Sampler seed for a table's statistics: a pure hash of the table name
/// (FNV-1a), so sampling decisions depend on nothing but (table, ordinal)
/// — never on thread schedule or load order.
uint64_t StatsSeedFor(const std::string& table) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : table) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Reservoir size: ~1.5% of the table, clamped — SATO found ~1% samples
/// suffice to place near-balanced partition boundaries.
size_t StatsSampleCapacity(size_t rows) {
  return std::clamp<size_t>(rows / 64, 256, 4096);
}

}  // namespace

StatusOr<std::unique_ptr<ParallelTable>> ParallelTable::Load(
    Cluster* cluster, catalog::TableDef def, const std::vector<Tuple>& rows,
    uint32_t tiles_per_axis, const std::vector<uint32_t>* explicit_owners) {
  auto table = std::unique_ptr<ParallelTable>(new ParallelTable());
  int num_nodes = cluster->num_nodes();

  // Spatial declustering needs a universe; compute it if absent.
  if (catalog::IsSpatialPartitioning(def.partitioning)) {
    if (def.universe.IsEmpty()) {
      for (const Tuple& t : rows) {
        def.universe.ExpandToInclude(t.at(def.partition_column).Mbr());
      }
    }
    table->grid_ = SpatialGrid(def.universe, tiles_per_axis,
                               static_cast<uint32_t>(num_nodes));
  }

  for (int n = 0; n < num_nodes; ++n) {
    auto frag = std::make_unique<Fragment>();
    // Fragments stripe over the node's data volumes; use volume 0 as the
    // anchor (the volume layer already amortizes seeks for sequential
    // access, which is the dominant pattern).
    frag->file = std::make_unique<storage::HeapFile>(
        next_file_id_++, cluster->node(n).pool(),
        cluster->node(n).data_volume(n % cluster->node(n).num_data_volumes())
            ->volume_id(),
        cluster->node(n).log());
    // Registering with the node's transaction manager makes the fragment
    // recoverable after a crash (bulk-load inserts pass a null txn and
    // stay unlogged; only transactional updates hit the WAL).
    cluster->node(n).txn_manager()->RegisterFile(frag->file.get());
    table->fragments_.push_back(std::move(frag));
  }

  double total_bytes = 0.0;
  std::vector<uint32_t> destinations;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Tuple& row = rows[i];
    total_bytes += static_cast<double>(row.WireBytes());
    destinations.clear();
    uint32_t primary_node = 0;
    switch (def.partitioning) {
      case catalog::PartitioningKind::kRoundRobin:
        primary_node = explicit_owners != nullptr
                           ? (*explicit_owners)[i]
                           : static_cast<uint32_t>(i % num_nodes);
        destinations.push_back(primary_node);
        break;
      case catalog::PartitioningKind::kHash:
        primary_node = static_cast<uint32_t>(
            row.at(def.partition_column).Hash() % num_nodes);
        destinations.push_back(primary_node);
        break;
      case catalog::PartitioningKind::kSpatial:
      case catalog::PartitioningKind::kTwoLayer: {
        geom::Box mbr = row.at(def.partition_column).Mbr();
        destinations = table->grid_.NodesOfBox(mbr);
        primary_node = table->grid_.PrimaryNode(mbr);
        break;
      }
    }
    const bool two_layer =
        def.partitioning == catalog::PartitioningKind::kTwoLayer;
    for (uint32_t n : destinations) {
      Fragment& frag = *table->fragments_[n];
      bool primary = (n == primary_node);
      uint8_t cls = 0;
      if (two_layer) {
        cls = table->grid_.CopyClassAt(n, row.at(def.partition_column).Mbr());
        // Every destination owns an overlapped tile by construction, and
        // the begin tile's owner is exactly the primary node.
        PARADISE_CHECK(cls != SpatialGrid::kNoOwnedTile);
        PARADISE_CHECK((cls == SpatialGrid::kClassA) == primary);
      }
      ByteBuffer record = EncodeRow(row, primary, cls);
      PARADISE_CHECK_MSG(record.size() <= storage::HeapFile::MaxRecordSize(),
                         "tuple exceeds page capacity; use LOB attributes");
      PARADISE_ASSIGN_OR_RETURN(storage::Oid oid,
                                frag.file->Insert(nullptr, record));
      frag.oids.push_back(oid);
      frag.primary.push_back(primary ? 1 : 0);
      if (two_layer) frag.cls.push_back(cls);
    }
  }

  def.num_tuples = static_cast<int64_t>(rows.size());
  table->avg_tuple_bytes_ =
      rows.empty() ? 0.0 : total_bytes / static_cast<double>(rows.size());
  def.avg_tuple_bytes = table->avg_tuple_bytes_;

  // Build the declared indexes, fragment-local, from the stored rows.
  for (int n = 0; n < num_nodes; ++n) {
    Fragment& frag = *table->fragments_[n];
    if (def.indexes.empty()) continue;
    // Materialize the fragment once for index building.
    TupleVec local;
    local.reserve(frag.oids.size());
    for (const storage::Oid& oid : frag.oids) {
      PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(oid));
      bool primary;
      local.push_back(DecodeRow(rec, &primary));
    }
    for (const catalog::IndexDef& idx : def.indexes) {
      if (idx.spatial) {
        // Bulk load (packed) as in [DeWi94].
        std::vector<std::pair<geom::Box, uint64_t>> entries;
        entries.reserve(local.size());
        for (uint64_t r = 0; r < local.size(); ++r) {
          entries.emplace_back(local[r].at(idx.column).Mbr(), r);
        }
        frag.rtree = index::RStarTree::BulkLoadStr(std::move(entries));
      } else {
        ValueType t = def.schema.column(idx.column).type;
        if (t == ValueType::kString) {
          auto [it, unused] = frag.string_indexes.try_emplace(idx.column);
          for (uint64_t r = 0; r < local.size(); ++r) {
            it->second.Insert(local[r].at(idx.column).AsString(), r);
          }
        } else if (t == ValueType::kInt || t == ValueType::kDate) {
          auto [it, unused] = frag.int_indexes.try_emplace(idx.column);
          for (uint64_t r = 0; r < local.size(); ++r) {
            const Value& v = local[r].at(idx.column);
            int64_t key = t == ValueType::kInt
                              ? v.AsInt()
                              : v.AsDate().days_since_epoch();
            it->second.Insert(key, r);
          }
        } else {
          return Status::InvalidArgument("unsupported index column type");
        }
      }
    }
  }

  // Publish optimizer statistics for spatially declustered tables: a
  // deterministic bottom-k sample of the (already in-memory) load rows
  // folded into a density histogram. Keyed by (table name, row ordinal)
  // pure hashes, so the histogram is bit-identical at any thread count.
  // Deliberately uncharged — the rows are in hand during load, so
  // sampling them costs no modeled I/O and leaves load times of the
  // paper-reproduction tables untouched.
  if (catalog::IsSpatialPartitioning(def.partitioning) && !rows.empty()) {
    opt::SpatialSampler sampler(StatsSeedFor(def.name), /*salt=*/0,
                                StatsSampleCapacity(rows.size()));
    for (size_t i = 0; i < rows.size(); ++i) {
      sampler.Add(i, rows[i].at(def.partition_column).Mbr());
    }
    cluster->catalog()->PutTableStats(
        opt::BuildHistogram(def.name, def.universe, sampler.Samples(),
                            static_cast<int64_t>(rows.size())));
  }

  table->def_ = std::move(def);
  return table;
}

Status ParallelTable::RebuildStats(Cluster* cluster) {
  if (!catalog::IsSpatialPartitioning(def_.partitioning)) {
    return Status::OK();
  }
  // Charged fragment scans (primaries only — replicas would double-count
  // boundary features), folded through per-fragment samplers exactly as a
  // single global pass would: bottom-k reservoirs merge losslessly.
  opt::SpatialSampler sampler(StatsSeedFor(def_.name), /*salt=*/0,
                              StatsSampleCapacity(
                                  static_cast<size_t>(num_rows())));
  uint64_t ordinal = 0;
  for (int n = 0; n < num_fragments(); ++n) {
    if (!cluster->alive(n)) continue;
    PARADISE_ASSIGN_OR_RETURN(TupleVec frag_rows,
                              ScanFragment(cluster, n,
                                           /*primaries_only=*/true));
    for (const Tuple& row : frag_rows) {
      sampler.Add(ordinal++, row.at(def_.partition_column).Mbr());
    }
  }
  cluster->catalog()->PutTableStats(
      opt::BuildHistogram(def_.name, def_.universe, sampler.Samples(),
                          static_cast<int64_t>(ordinal)));
  return Status::OK();
}

int64_t ParallelTable::num_rows() const {
  int64_t n = 0;
  for (const auto& f : fragments_) {
    for (uint8_t p : f->primary) n += p;
  }
  return n;
}

int64_t ParallelTable::num_stored() const {
  int64_t n = 0;
  for (const auto& f : fragments_) n += f->num_live();
  return n;
}

std::array<int64_t, 4> ParallelTable::ClassCounts() const {
  std::array<int64_t, 4> counts{};
  for (const auto& f : fragments_) {
    for (uint64_t r = 0; r < f->oids.size(); ++r) {
      if (!f->row_live(r)) continue;
      ++counts[f->row_class(r) & 3];
    }
  }
  return counts;
}

StatusOr<TupleVec> ParallelTable::ScanFragment(Cluster* cluster, int node,
                                               bool primaries_only) const {
  const Fragment& frag = *fragments_[node];
  sim::NodeClock* clock = cluster->node(node).clock();
  TupleVec out;
  out.reserve(frag.oids.size());
  auto it = frag.file->NewIterator();
  storage::Oid oid;
  ByteBuffer record;
  while (it.Next(&oid, &record)) {
    clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                     sim::cpu_cost::kPerByteCopied *
                         static_cast<double>(record.size()));
    bool primary;
    Tuple t = DecodeRow(record, &primary);
    if (primaries_only && !primary) continue;
    out.push_back(std::move(t));
  }
  return out;
}

namespace {

/// Deep-copies a raster's tiles to `dest_node` (pull from the owner:
/// owner read + both links + destination write, all charged).
StatusOr<array::Raster> CopyRasterToNode(Cluster* cluster, int dest_node,
                                         const array::Raster& raster) {
  PullTileSource pull(cluster, static_cast<uint32_t>(dest_node));
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer data,
                            array::ReadFull(raster.handle, &pull));
  Node& dest = cluster->node(dest_node);
  array::Raster copy;
  copy.geo = raster.geo;
  PARADISE_ASSIGN_OR_RETURN(
      copy.handle,
      array::StoreArray(data.data(), raster.handle.dims,
                        raster.handle.elem_size, dest.lob_store(),
                        dest.clock(), /*compress=*/true,
                        array::kDefaultTileBytes,
                        static_cast<uint32_t>(dest_node)));
  return copy;
}

}  // namespace

namespace {

/// Per-operation claim cursor over a fragment's persistent contents map.
/// Pairs each shipped copy with at most one distinct pre-existing *live*
/// copy at the destination; entries appended by the current operation are
/// excluded (the limit is snapshotted at first touch of a key, before any
/// same-key insert can happen), reproducing the one-shot consumption
/// semantics the old per-salvage survivor content map had.
class ContentClaims {
 public:
  explicit ContentClaims(const ParallelTable::Fragment* frag)
      : frag_(frag) {}

  /// Returns the row id of a claimed pre-existing live copy, or -1.
  int64_t Claim(const std::string& key) {
    if (frag_->contents == nullptr) return -1;
    auto it = frag_->contents->find(key);
    if (it == frag_->contents->end()) return -1;
    auto [cur, unused] =
        cursors_.try_emplace(key, Cursor{0, it->second.size()});
    Cursor& c = cur->second;
    while (c.next < c.limit) {
      uint64_t r = it->second[c.next++];
      if (frag_->row_live(r)) return static_cast<int64_t>(r);
    }
    return -1;
  }

 private:
  struct Cursor {
    size_t next;
    size_t limit;
  };
  const ParallelTable::Fragment* frag_;
  std::unordered_map<std::string, Cursor> cursors_;
};

}  // namespace

Status ParallelTable::EnsureContents(Cluster* cluster, int node) {
  Fragment& frag = *fragments_[node];
  if (frag.contents != nullptr) return Status::OK();
  frag.contents = std::make_unique<
      std::unordered_map<std::string, std::vector<uint64_t>>>();
  frag.contents->reserve(frag.oids.size());
  sim::NodeClock* clock = cluster->node(node).clock();
  for (uint64_t r = 0; r < frag.oids.size(); ++r) {
    if (!frag.row_live(r)) continue;
    PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(frag.oids[r]));
    clock->ChargeCpu(sim::cpu_cost::kTupleOverhead + sim::cpu_cost::kHash);
    (*frag.contents)[RecordKey(rec)].push_back(r);
  }
  return Status::OK();
}

StatusOr<ParallelTable::InsertOutcome> ParallelTable::InsertMigratedRow(
    Cluster* cluster, int node, const Tuple& row, const ByteBuffer& record,
    bool make_primary) {
  Tuple local = row;  // shallow copy; rasters deep-copied below
  ByteBuffer rec;
  bool reencode = false;
  for (Value& v : local.values) {
    if (v.type() == ValueType::kRaster) {
      PARADISE_ASSIGN_OR_RETURN(
          array::Raster moved, CopyRasterToNode(cluster, node, *v.AsRaster()));
      v = Value(std::move(moved));
      reencode = true;
    }
  }
  uint8_t cls = 0;
  if (def_.partitioning == catalog::PartitioningKind::kTwoLayer) {
    cls = grid_.CopyClassAt(static_cast<uint32_t>(node),
                            local.at(def_.partition_column).Mbr());
    // A staged pre-cutover copy lands at a node that owns no overlapped
    // tile yet; park it in the weakest class (never A: it is not the
    // primary) until the cutover's flag refresh assigns the real one.
    if (cls == SpatialGrid::kNoOwnedTile) cls = SpatialGrid::kClassD;
  }
  if (reencode) {
    rec = EncodeRow(local, make_primary, cls);
  } else {
    rec = record;
    rec[0] = FlagByte(make_primary, cls);
  }
  Fragment& frag = *fragments_[node];
  PARADISE_ASSIGN_OR_RETURN(storage::Oid oid, frag.file->Insert(nullptr, rec));
  frag.oids.push_back(oid);
  frag.primary.push_back(make_primary ? 1 : 0);
  if (def_.partitioning == catalog::PartitioningKind::kTwoLayer) {
    frag.cls.push_back(cls);
  }
  if (!frag.live.empty()) frag.live.push_back(1);
  const uint64_t r = frag.oids.size() - 1;
  sim::NodeClock* clock = cluster->node(node).clock();
  clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                   sim::cpu_cost::kPerByteCopied *
                       static_cast<double>(rec.size()));
  for (const catalog::IndexDef& idx : def_.indexes) {
    clock->ChargeCpu(sim::cpu_cost::kIndexProbe);
    if (idx.spatial) {
      if (frag.rtree == nullptr) {
        frag.rtree = std::make_unique<index::RStarTree>();
      }
      frag.rtree->Insert(local.at(idx.column).Mbr(), r);
    } else {
      ValueType t = def_.schema.column(idx.column).type;
      if (t == ValueType::kString) {
        frag.string_indexes[idx.column].Insert(local.at(idx.column).AsString(),
                                               r);
      } else {
        const Value& v = local.at(idx.column);
        int64_t key = t == ValueType::kInt ? v.AsInt()
                                           : v.AsDate().days_since_epoch();
        frag.int_indexes[idx.column].Insert(key, r);
      }
    }
  }
  if (frag.contents != nullptr) {
    (*frag.contents)[RecordKey(rec)].push_back(r);
  }
  return InsertOutcome{r, static_cast<int64_t>(rec.size())};
}

Status ParallelTable::SetRowPrimary(Cluster* cluster, int node, uint64_t row,
                                    bool primary) {
  // Flip the flag byte of the *stored* record: the caller's staged bytes
  // may have been re-encoded on insert (raster deep copies), so they are
  // not a valid in-place-update template here. Class bits are preserved;
  // RefreshRowFlags is the path that recomputes them.
  Fragment& frag = *fragments_[node];
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(frag.oids[row]));
  rec[0] = FlagByte(primary, RecordClass(rec));
  PARADISE_RETURN_IF_ERROR(frag.file->Update(nullptr, frag.oids[row], rec));
  frag.primary[row] = primary ? 1 : 0;
  cluster->node(node).clock()->ChargeCpu(sim::cpu_cost::kTupleOverhead);
  return Status::OK();
}

Status ParallelTable::RefreshRowFlags(Cluster* cluster, int node,
                                      uint64_t row, const geom::Box& mbr) {
  Fragment& frag = *fragments_[node];
  const bool want_primary =
      grid_.PrimaryNode(mbr) == static_cast<uint32_t>(node);
  uint8_t want_cls = 0;
  if (def_.partitioning == catalog::PartitioningKind::kTwoLayer) {
    want_cls = grid_.CopyClassAt(static_cast<uint32_t>(node), mbr);
    // Rows kept only until orphan GC (the node owns no overlapped tile
    // anymore) stay in the weakest non-primary class.
    if (want_cls == SpatialGrid::kNoOwnedTile) want_cls = SpatialGrid::kClassD;
    if (frag.cls.size() <= row) frag.cls.resize(row + 1, 0);
  }
  if ((frag.primary[row] != 0) == want_primary &&
      frag.row_class(row) == want_cls) {
    return Status::OK();  // byte already right: no write, no charge
  }
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(frag.oids[row]));
  rec[0] = FlagByte(want_primary, want_cls);
  PARADISE_RETURN_IF_ERROR(frag.file->Update(nullptr, frag.oids[row], rec));
  frag.primary[row] = want_primary ? 1 : 0;
  if (!frag.cls.empty()) frag.cls[row] = want_cls;
  cluster->node(node).clock()->ChargeCpu(sim::cpu_cost::kTupleOverhead);
  return Status::OK();
}

Status ParallelTable::RedeclusterAfterLoss(Cluster* cluster, int dead_node) {
  return cluster->topology()->MigrateForLoss(this, dead_node);
}

Status ParallelTable::SalvageDeadNode(Cluster* cluster, int dead_node) {
  PARADISE_CHECK_MSG(!cluster->alive(dead_node),
                     "redecluster target must be marked dead first");
  Fragment& dead = *fragments_[dead_node];
  sim::NodeClock* dead_clock = cluster->node(dead_node).clock();
  const std::vector<int> survivors = cluster->alive_node_ids();
  PARADISE_CHECK(!survivors.empty());

  const bool spatial = catalog::IsSpatialPartitioning(def_.partitioning);

  // The tiles whose *pre-death* owner was the dead node: resolved through
  // planned reassignments but before the dead rehash. Materializing the
  // rehash as explicit reassignments afterwards keeps the assignment
  // exact for any later loss or reinstatement.
  std::unordered_set<uint32_t> lost_tiles;
  if (spatial) {
    const uint32_t dead32 = static_cast<uint32_t>(dead_node);
    const auto& overrides = grid_.reassigned_tiles();
    for (uint32_t t = 0; t < grid_.num_tiles(); ++t) {
      auto it = overrides.find(t);
      uint32_t resolved =
          it != overrides.end() ? it->second : grid_.BaseNodeOfTile(t);
      if (resolved == dead32) lost_tiles.insert(t);
    }
    if (!grid_.node_dead(dead32)) grid_.MarkNodeDead(dead32);
    for (uint32_t t : lost_tiles) grid_.ReassignTile(t, grid_.NodeOfTile(t));
  }

  // 1. Salvage: sequentially read the dead fragment off its surviving
  //    disks (the node is gone; its disks are not), charging the salvage
  //    station's clock.
  struct Salvaged {
    Tuple tuple;
    ByteBuffer record;
    bool primary = false;
  };
  std::vector<Salvaged> salvaged;
  salvaged.reserve(dead.oids.size());
  {
    auto it = dead.file->NewIterator();
    storage::Oid oid;
    ByteBuffer record;
    while (it.Next(&oid, &record)) {
      dead_clock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                            sim::cpu_cost::kPerByteCopied *
                                static_cast<double>(record.size()));
      Salvaged s;
      s.tuple = DecodeRow(record, &s.primary);
      s.record = std::move(record);
      salvaged.push_back(std::move(s));
    }
  }

  // 2. Survivors that already hold a replica must keep it instead of
  //    storing a duplicate: consult each survivor's content index (built
  //    on first use — a charged fragment read, part of the honest
  //    integration cost — and maintained incrementally afterwards).
  std::unordered_map<int, ContentClaims> claims;
  if (spatial && !salvaged.empty()) {
    for (int d : survivors) {
      PARADISE_RETURN_IF_ERROR(EnsureContents(cluster, d));
      claims.emplace(d, ContentClaims(fragments_[d].get()));
    }
  }

  // 3. Route every salvaged row to its post-loss owners.
  std::unordered_map<int, int64_t> shipped_bytes;
  size_t stripe = 0;  // round-robin cursor over survivors
  for (Salvaged& s : salvaged) {
    std::vector<uint32_t> dests;
    uint32_t primary_node = 0;
    if (spatial) {
      geom::Box mbr = s.tuple.at(def_.partition_column).Mbr();
      // The new owners of the dead node's tiles that this row overlapped.
      for (uint32_t t : grid_.TilesOfBox(mbr)) {
        if (lost_tiles.count(t) != 0) dests.push_back(grid_.NodeOfTile(t));
      }
      std::sort(dests.begin(), dests.end());
      dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
      primary_node = grid_.PrimaryNode(mbr);
    } else {
      // Round-robin and hash tables stripe the lost rows over survivors
      // (the original hash function maps to the dead node).
      dests.push_back(
          static_cast<uint32_t>(survivors[stripe++ % survivors.size()]));
      primary_node = dests[0];
    }

    for (uint32_t dest : dests) {
      const int d = static_cast<int>(dest);
      const bool make_primary = s.primary && dest == primary_node;
      if (spatial) {
        auto claims_it = claims.find(d);
        if (claims_it != claims.end()) {
          int64_t r = claims_it->second.Claim(RecordKey(s.record));
          if (r >= 0) {
            // The survivor already holds a replica; keep it and, when the
            // dead node held the primary copy, promote it in place. Under
            // kTwoLayer the survivor may also have gained a
            // stronger-class tile, so the whole flag byte is refreshed.
            if (def_.partitioning == catalog::PartitioningKind::kTwoLayer) {
              PARADISE_RETURN_IF_ERROR(RefreshRowFlags(
                  cluster, d, static_cast<uint64_t>(r),
                  s.tuple.at(def_.partition_column).Mbr()));
            } else if (make_primary) {
              PARADISE_RETURN_IF_ERROR(
                  SetRowPrimary(cluster, d, static_cast<uint64_t>(r), true));
            }
            continue;
          }
        }
      }
      PARADISE_ASSIGN_OR_RETURN(
          InsertOutcome out,
          InsertMigratedRow(cluster, d, s.tuple, s.record, make_primary));
      shipped_bytes[d] += out.bytes;
    }
  }

  // Ship the shallow tuple bytes over the salvage station's link, batched
  // per destination (raster tiles were charged by the pull copies).
  for (const auto& [d, bytes] : shipped_bytes) {
    cluster->ChargeTransfer(static_cast<uint32_t>(dead_node),
                            static_cast<uint32_t>(d), bytes);
  }

  // 4. Decommission the dead fragment so nothing can double-read it. The
  //    heap file object stays alive (it is registered with the node's
  //    transaction manager) but holds no records.
  for (uint64_t r = 0; r < dead.oids.size(); ++r) {
    if (!dead.row_live(r)) continue;  // already unstaged/GC'd
    PARADISE_RETURN_IF_ERROR(dead.file->Delete(nullptr, dead.oids[r]));
  }
  dead.oids.clear();
  dead.primary.clear();
  dead.cls.clear();
  dead.live.clear();
  dead.rtree.reset();
  dead.string_indexes.clear();
  dead.int_indexes.clear();
  dead.contents.reset();

  // The physical layout (and for spatial tables the density per node)
  // just changed; stale histograms must not steer the optimizer.
  cluster->catalog()->InvalidateTableStats(def_.name);
  return Status::OK();
}

Status ParallelTable::EnsureFragments(Cluster* cluster) {
  while (static_cast<int>(fragments_.size()) < cluster->num_nodes()) {
    const int n = static_cast<int>(fragments_.size());
    auto frag = std::make_unique<Fragment>();
    frag->file = std::make_unique<storage::HeapFile>(
        next_file_id_++, cluster->node(n).pool(),
        cluster->node(n).data_volume(n % cluster->node(n).num_data_volumes())
            ->volume_id(),
        cluster->node(n).log());
    cluster->node(n).txn_manager()->RegisterFile(frag->file.get());
    fragments_.push_back(std::move(frag));
  }
  return Status::OK();
}

StatusOr<ParallelTable::StagedMove> ParallelTable::StageTileRows(
    Cluster* cluster, uint32_t tile, int source, int target) {
  PARADISE_CHECK(catalog::IsSpatialPartitioning(def_.partitioning));
  StagedMove st;
  st.tile = tile;
  st.source = source;
  st.target = target;
  Fragment& src = *fragments_[source];
  if (src.oids.empty()) return st;
  sim::NodeClock* sclock = cluster->node(source).clock();

  // Candidate rows at the source overlapping the tile: pruned through the
  // fragment R*-tree when it indexes the partition column (else its
  // boxes are not the ones the grid declusters on), else a full walk.
  const catalog::IndexDef* spatial_idx =
      def_.FindIndexOn(def_.partition_column, /*spatial=*/true);
  std::vector<uint64_t> candidates;
  if (src.rtree != nullptr && spatial_idx != nullptr) {
    sclock->ChargeCpu(sim::cpu_cost::kIndexProbe);
    src.rtree->SearchOverlap(grid_.TileBox(tile),
                             [&](const geom::Box&, uint64_t r) {
                               candidates.push_back(r);
                               return true;
                             });
    std::sort(candidates.begin(), candidates.end());
  } else {
    candidates.resize(src.oids.size());
    for (uint64_t r = 0; r < src.oids.size(); ++r) candidates[r] = r;
  }

  // Exact membership: the row's partition-column MBR must map the tile
  // into its replication set (the index column may differ, and touching a
  // tile boundary is not the same as overlapping the tile's cell range).
  struct Pending {
    uint64_t row;
    geom::Box mbr;
    ByteBuffer record;
    Tuple tuple;
  };
  std::vector<Pending> eligible;
  for (uint64_t r : candidates) {
    if (!src.row_live(r)) continue;
    PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, src.file->Get(src.oids[r]));
    sclock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                      sim::cpu_cost::kPerByteCopied *
                          static_cast<double>(rec.size()));
    bool primary;
    Tuple t = DecodeRow(rec, &primary);
    geom::Box mbr = t.at(def_.partition_column).Mbr();
    std::vector<uint32_t> tiles = grid_.TilesOfBox(mbr);
    if (std::find(tiles.begin(), tiles.end(), tile) == tiles.end()) continue;
    eligible.push_back(
        Pending{r, mbr, std::move(rec), std::move(t)});
  }
  if (eligible.empty()) return st;

  PARADISE_RETURN_IF_ERROR(EnsureContents(cluster, target));
  ContentClaims claims(fragments_[target].get());
  for (Pending& p : eligible) {
    st.source_rows.push_back(StagedRowRef{p.row, p.mbr, p.record});
    int64_t claimed = claims.Claim(RecordKey(p.record));
    if (claimed >= 0) {
      st.target_rows.push_back(
          StagedRowRef{static_cast<uint64_t>(claimed), p.mbr, p.record});
      ++st.rows_deduped;
    } else {
      // Staged copies land non-primary: invisible to primaries-only
      // scans and filtered by the reference-point rule until cutover.
      PARADISE_ASSIGN_OR_RETURN(
          InsertOutcome out,
          InsertMigratedRow(cluster, target, p.tuple, p.record, false));
      st.target_rows.push_back(StagedRowRef{out.row, p.mbr, p.record});
      st.inserted_rows.push_back(out.row);
      st.bytes += out.bytes;
      ++st.rows_shipped;
    }
  }
  if (st.bytes > 0) {
    cluster->ChargeTransfer(static_cast<uint32_t>(source),
                            static_cast<uint32_t>(target), st.bytes);
  }
  return st;
}

StatusOr<ParallelTable::StagedMove> ParallelTable::StageStripeRows(
    Cluster* cluster, int source, int target, size_t stripe_index,
    size_t stripe_count) {
  PARADISE_CHECK(!catalog::IsSpatialPartitioning(def_.partitioning));
  PARADISE_CHECK(stripe_count > 0 && stripe_index < stripe_count);
  StagedMove st;
  st.source = source;
  st.target = target;
  Fragment& src = *fragments_[source];
  sim::NodeClock* sclock = cluster->node(source).clock();
  for (uint64_t r = stripe_index; r < src.oids.size(); r += stripe_count) {
    if (!src.row_live(r)) continue;
    PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, src.file->Get(src.oids[r]));
    sclock->ChargeCpu(sim::cpu_cost::kTupleOverhead +
                      sim::cpu_cost::kPerByteCopied *
                          static_cast<double>(rec.size()));
    bool primary;
    Tuple t = DecodeRow(rec, &primary);
    st.source_rows.push_back(StagedRowRef{r, geom::Box(), rec});
    PARADISE_ASSIGN_OR_RETURN(
        InsertOutcome out, InsertMigratedRow(cluster, target, t, rec, false));
    st.target_rows.push_back(StagedRowRef{out.row, geom::Box(), rec});
    st.inserted_rows.push_back(out.row);
    st.bytes += out.bytes;
    ++st.rows_shipped;
  }
  if (st.bytes > 0) {
    cluster->ChargeTransfer(static_cast<uint32_t>(source),
                            static_cast<uint32_t>(target), st.bytes);
  }
  return st;
}

Status ParallelTable::UnstageMove(Cluster* cluster, const StagedMove& st) {
  return DropRows(cluster, st.target, st.inserted_rows);
}

StatusOr<ParallelTable::CutoverResult> ParallelTable::CutoverMove(
    Cluster* cluster, const StagedMove& st) {
  CutoverResult res;
  const bool spatial = catalog::IsSpatialPartitioning(def_.partitioning);
  const bool two_layer =
      def_.partitioning == catalog::PartitioningKind::kTwoLayer;
  Fragment& tgt = *fragments_[st.target];
  for (const StagedRowRef& ref : st.target_rows) {
    if (two_layer) {
      // The grid already points at the new owner: recompute the whole
      // flag byte (primary bit + begin class) of every copy the move
      // relies on. No-op (and no charge) when nothing changed — the
      // exact condition the legacy primary-only update uses.
      PARADISE_RETURN_IF_ERROR(
          RefreshRowFlags(cluster, st.target, ref.row, ref.mbr));
      continue;
    }
    const bool want =
        spatial ? grid_.PrimaryNode(ref.mbr) == static_cast<uint32_t>(st.target)
                : true;
    if ((tgt.primary[ref.row] != 0) != want) {
      PARADISE_RETURN_IF_ERROR(
          SetRowPrimary(cluster, st.target, ref.row, want));
    }
  }
  Fragment& src = *fragments_[st.source];
  for (const StagedRowRef& ref : st.source_rows) {
    bool want = false;
    bool keep = false;
    if (spatial) {
      want = grid_.PrimaryNode(ref.mbr) == static_cast<uint32_t>(st.source);
      for (uint32_t t : grid_.TilesOfBox(ref.mbr)) {
        if (grid_.NodeOfTile(t) == static_cast<uint32_t>(st.source)) {
          keep = true;
          break;
        }
      }
    }
    if (two_layer) {
      PARADISE_RETURN_IF_ERROR(
          RefreshRowFlags(cluster, st.source, ref.row, ref.mbr));
    } else if ((src.primary[ref.row] != 0) != want) {
      PARADISE_RETURN_IF_ERROR(
          SetRowPrimary(cluster, st.source, ref.row, want));
    }
    if (!keep) res.orphaned_source_rows.push_back(ref.row);
  }
  return res;
}

Status ParallelTable::DropRows(Cluster* cluster, int node,
                               const std::vector<uint64_t>& rows) {
  if (rows.empty()) return Status::OK();
  Fragment& frag = *fragments_[node];
  if (frag.live.empty()) frag.live.assign(frag.oids.size(), 1);
  sim::NodeClock* clock = cluster->node(node).clock();
  for (uint64_t r : rows) {
    if (!frag.live[r]) continue;
    PARADISE_RETURN_IF_ERROR(frag.file->Delete(nullptr, frag.oids[r]));
    frag.live[r] = 0;
    frag.primary[r] = 0;
    if (!frag.cls.empty()) frag.cls[r] = 0;
    clock->ChargeCpu(sim::cpu_cost::kTupleOverhead);
  }
  return Status::OK();
}

StatusOr<int64_t> ParallelTable::DropOrphanedRows(
    Cluster* cluster, int node, const std::vector<uint64_t>& rows) {
  const bool spatial = catalog::IsSpatialPartitioning(def_.partitioning);
  Fragment& frag = *fragments_[node];
  sim::NodeClock* clock = cluster->node(node).clock();
  std::vector<uint64_t> doomed;
  doomed.reserve(rows.size());
  for (uint64_t r : rows) {
    if (r >= frag.oids.size()) continue;  // fragment decommissioned since
    if (!frag.row_live(r)) continue;
    if (spatial) {
      // Re-promoted to primary, or re-claimed as a replica for a tile a
      // later move handed (back) to this node: the orphan verdict from
      // cutover time no longer holds.
      if (frag.primary[r] != 0) continue;
      PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(frag.oids[r]));
      clock->ChargeCpu(sim::cpu_cost::kTupleOverhead);
      bool primary;
      Tuple t = DecodeRow(rec, &primary);
      bool keep = false;
      for (uint32_t tl : grid_.TilesOfBox(t.at(def_.partition_column).Mbr())) {
        if (grid_.NodeOfTile(tl) == static_cast<uint32_t>(node)) {
          keep = true;
          break;
        }
      }
      if (keep) continue;
    }
    doomed.push_back(r);
  }
  PARADISE_RETURN_IF_ERROR(DropRows(cluster, node, doomed));
  return static_cast<int64_t>(doomed.size());
}

Status ParallelTable::ValidateOwnership(Cluster* cluster) const {
  const bool spatial = catalog::IsSpatialPartitioning(def_.partitioning);
  const bool two_layer =
      def_.partitioning == catalog::PartitioningKind::kTwoLayer;
  int64_t primaries = 0;
  // (key, mbr) of every primary copy, for the replica-completeness pass.
  std::vector<std::pair<std::string, geom::Box>> primary_keys;
  // Per-alive-node live content keys.
  std::unordered_map<int, std::unordered_set<std::string>> node_keys;
  for (int n = 0; n < static_cast<int>(fragments_.size()); ++n) {
    const Fragment& frag = *fragments_[n];
    const bool node_alive = cluster->alive(n);
    for (uint64_t r = 0; r < frag.oids.size(); ++r) {
      if (!frag.row_live(r)) continue;
      PARADISE_ASSIGN_OR_RETURN(ByteBuffer rec, frag.file->Get(frag.oids[r]));
      bool flag;
      Tuple t = DecodeRow(rec, &flag);
      if ((frag.primary[r] != 0) != flag) {
        return Status::Internal("ownership audit: primary flag vector out of "
                                "sync with stored record");
      }
      if (!node_alive) {
        if (flag) {
          return Status::Internal("ownership audit: primary copy stranded on "
                                  "a dead/removed node");
        }
        continue;
      }
      if (flag) ++primaries;
      if (spatial) {
        geom::Box mbr = t.at(def_.partition_column).Mbr();
        const bool want = grid_.PrimaryNode(mbr) == static_cast<uint32_t>(n);
        if (want != flag) {
          return Status::Internal(
              "ownership audit: primary flag disagrees with grid owner");
        }
        if (two_layer) {
          if (frag.row_class(r) != RecordClass(rec)) {
            return Status::Internal("ownership audit: class vector out of "
                                    "sync with stored record");
          }
          const uint8_t want_cls =
              grid_.CopyClassAt(static_cast<uint32_t>(n), mbr);
          // Rows kept only until orphan GC carry the parked class D;
          // rows at a tile owner must carry the grid's class, and class
          // A must coincide with the primary flag.
          const uint8_t expect = want_cls == SpatialGrid::kNoOwnedTile
                                     ? SpatialGrid::kClassD
                                     : want_cls;
          if (frag.row_class(r) != expect) {
            return Status::Internal(
                "ownership audit: stored class disagrees with grid");
          }
          if ((frag.row_class(r) == SpatialGrid::kClassA) != flag) {
            return Status::Internal(
                "ownership audit: class A does not match the primary flag");
          }
        }
        node_keys[n].insert(RecordKey(rec));
        if (flag) primary_keys.emplace_back(RecordKey(rec), mbr);
      }
    }
  }
  if (primaries != def_.num_tuples) {
    return Status::Internal("ownership audit: logical cardinality drifted "
                            "(lost or duplicated rows)");
  }
  if (spatial) {
    for (const auto& [key, mbr] : primary_keys) {
      for (uint32_t d : grid_.NodesOfBox(mbr)) {
        if (static_cast<size_t>(d) >= fragments_.size()) continue;
        if (!cluster->alive(static_cast<int>(d))) continue;
        auto it = node_keys.find(static_cast<int>(d));
        if (it == node_keys.end() || it->second.count(key) == 0) {
          return Status::Internal(
              "ownership audit: replica missing at an alive tile owner");
        }
      }
    }
  }
  return Status::OK();
}

StatusOr<Tuple> ParallelTable::FetchRow(Cluster* cluster, int node,
                                        uint64_t row) const {
  const Fragment& frag = *fragments_[node];
  PARADISE_ASSIGN_OR_RETURN(ByteBuffer record, frag.file->Get(frag.oids[row]));
  cluster->node(node).clock()->ChargeCpu(
      sim::cpu_cost::kTupleOverhead +
      sim::cpu_cost::kPerByteCopied * static_cast<double>(record.size()));
  bool primary;
  return DecodeRow(record, &primary);
}

}  // namespace paradise::core
