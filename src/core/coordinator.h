#ifndef PARADISE_CORE_COORDINATOR_H_
#define PARADISE_CORE_COORDINATOR_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/cluster.h"
#include "exec/tuple.h"

namespace paradise::core {

class WorkloadSession;

/// Surcharges for resources shared between concurrently admitted queries.
/// A phase that ran with K *other* queries admitted pays:
///   disk x (1 + (disk_queue + pool_pressure) x K)    queueing at the
///     volumes plus the extra misses a shared buffer pool causes,
///   net  x (1 + link_share x K)                      the node links carry
///     every query's exchanges,
///   cpu and modeled idle unscaled (each query runs its phases on the
///     nodes' CPUs one at a time in modeled time; idle is already waiting).
/// K is sampled when the phase takes its turn, a pure function of the
/// admission history — so contended time is as deterministic as the
/// uncontended model.
struct ContentionModel {
  double disk_queue_factor = 0.20;
  double pool_pressure_factor = 0.05;
  double link_share_factor = 0.10;

  double SecondsUnder(const sim::CostModel& m, const sim::ResourceUsage& u,
                      int other_queries) const {
    double k = other_queries > 0 ? static_cast<double>(other_queries) : 0.0;
    return m.DiskSeconds(u) *
               (1.0 + (disk_queue_factor + pool_pressure_factor) * k) +
           m.NetSeconds(u) * (1.0 + link_share_factor * k) +
           m.CpuSeconds(u) + u.idle_seconds;
  }
};

/// Admission control and deterministic scheduling for a multi-query
/// workload (N client streams sharing one cluster).
///
/// Determinism model: real execution is serialized — exactly one query
/// runs a phase on the thread pool at a time — but *modeled* time
/// interleaves. Every stream thread parks with the modeled timestamp of
/// its next event (query submission, or its query's next phase at the
/// query's accumulated modeled time); the scheduler always wakes the
/// globally minimal (time, stream) pair. Phases therefore execute in
/// modeled-time order, and every scheduling decision — admission order,
/// contention level, scan-sharing overlap, cache visibility — is a pure
/// function of modeled time, bit-identical at any PARADISE_THREADS
/// setting.
///
/// Admission: at most `max_concurrent` queries are admitted at once; a
/// stream submitting into a full window parks untimed in FIFO order and is
/// admitted at max(submit time, the finishing query's end time).
class WorkloadSession {
 public:
  struct Options {
    int num_streams = 1;
    /// Admitted-query window (the paper's testbed would thrash far
    /// earlier; four concurrent queries is the benchmark's default mix).
    int max_concurrent = 4;
    bool scan_sharing = true;
    bool result_cache = true;
    ContentionModel contention;
  };

  /// One admitted query's scheduling state. Owned by the session; valid
  /// from AwaitAdmission until the stream's next AwaitAdmission.
  struct Ticket {
    int stream = -1;
    int64_t seq = -1;              // admission order, diagnostics only
    double submit_seconds = 0.0;   // when the client submitted
    double admit_seconds = 0.0;    // when a slot was granted
    double now_seconds = 0.0;      // admit + modeled query time so far
    int concurrent_at_admit = 0;   // queries in flight at admission (incl.
                                   // this one)
  };

  WorkloadSession(Cluster* cluster, const Options& options);
  ~WorkloadSession();

  WorkloadSession(const WorkloadSession&) = delete;
  WorkloadSession& operator=(const WorkloadSession&) = delete;

  // -- Stream-thread protocol ---------------------------------------------
  // Each of the `num_streams` client threads calls BindStream once, then
  // alternates AwaitAdmission / (run query) / FinishQuery, and finally
  // EndStream. Scheduling starts only once every stream is bound.

  void BindStream(int stream);

  /// Blocks until global modeled time reaches `ready_seconds` *and* an
  /// admission slot is free. Returns this query's ticket.
  Ticket* AwaitAdmission(double ready_seconds);

  /// Completes the bound stream's admitted query after `query_seconds` of
  /// modeled time, freeing its slot (and admitting the longest-waiting
  /// queued stream, if any).
  void FinishQuery(double query_seconds);

  /// Retires the bound stream; remaining streams keep scheduling.
  void EndStream();

  // -- Coordinator hooks (called on a bound stream's thread) --------------

  /// The bound thread's current ticket, or null if the calling thread is
  /// not a bound stream (single-query mode).
  Ticket* CurrentTicket();

  /// Parks until it is this query's turn (global modeled time reaches the
  /// ticket's now_seconds). Returns the number of *other* queries admitted
  /// at that instant — the phase's contention level K.
  int BeginPhaseTurn();

  // -- Scan sharing -------------------------------------------------------

  /// Registers a finished scan phase keyed by what it read (e.g.
  /// "scan:raster"): it streamed those pages over [start, end) of modeled
  /// time, and a later scan of the same key may attach to it.
  void RegisterScan(const std::string& key, double start_seconds,
                    double end_seconds);

  /// How much of an in-flight scan of `key` a scan starting now can still
  /// ride, in eighths of its readahead windows (0 = no overlap, 8 = full).
  /// A scan starting at time t inside another's [s, e) has fraction
  /// (e - t) / (e - s) of the stream still ahead of it.
  int GrantScanShare(const std::string& key);

  // -- Result cache -------------------------------------------------------

  /// Looks up `key` at the bound query's admission time. Only entries
  /// published at or before that modeled instant are visible (causality);
  /// on a hit, copies the rows and returns the modeled seconds the serve
  /// costs (hash + copy CPU).
  bool LookupCachedResult(const std::string& key, exec::TupleVec* rows,
                          double* serve_seconds);

  /// Publishes a finished query's rows under `key`, visible to lookups at
  /// or after `publish_seconds`. `dep_tables` names the base tables the
  /// result was computed from; mutating any of them invalidates the entry.
  void PublishResult(const std::string& key,
                     std::vector<std::string> dep_tables, exec::TupleVec rows,
                     double publish_seconds);

  /// Drops every cached result that depends on `table` (called via
  /// QueryCoordinator::NoteTableMutation when a query stores into it).
  void InvalidateCachedResults(const std::string& table);

  // -- Introspection ------------------------------------------------------

  const Options& options() const { return options_; }
  Cluster* cluster() { return cluster_; }
  /// Queries currently admitted (holding slots). The TopologyManager's
  /// migration pump only executes moves when this is zero.
  int in_flight() const;
  /// Contention surcharge for active background work (tile migration):
  /// added to every phase's K so foreground queries pay for sharing the
  /// disks and links with the migration stream. Set by the
  /// TopologyManager; 0 when migration is idle.
  void set_background_load(int load) { background_load_ = load; }
  int64_t cache_hits() const;
  int64_t cache_misses() const;
  int64_t cache_invalidations() const;
  int64_t scan_attaches() const;

 private:
  struct Entity {
    int stream = -1;
    bool registered = false;
    bool done = false;
    bool parked = false;             // holds a modeled next-event time
    bool waiting_admission = false;  // parked untimed in the FIFO queue
    bool granted = false;
    double park_time = 0.0;
    Ticket ticket;
    std::condition_variable cv;
  };

  struct ScanWindow {
    double start = 0.0;
    double end = 0.0;
  };

  struct CacheEntry {
    exec::TupleVec rows;
    std::vector<std::string> dep_tables;
    double publish_seconds = 0.0;
  };

  Entity* BoundLocked();
  /// Parks the bound entity at `time` and blocks until the scheduler
  /// grants it the turn (it holds the global minimum next-event time).
  void ParkUntilGrantedLocked(std::unique_lock<std::mutex>& lock, Entity* e,
                              double time);
  /// Wakes the minimal parked entity iff every live entity is parked (the
  /// turnstile invariant: at most one stream thread executes at a time).
  void MaybeGrantLocked();

  Cluster* const cluster_;
  const Options options_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entity>> entities_;  // index = stream id
  std::unordered_map<std::thread::id, Entity*> bound_;
  int registered_ = 0;
  int in_flight_ = 0;
  int background_load_ = 0;
  int64_t next_seq_ = 0;
  std::deque<Entity*> admission_queue_;
  std::unordered_map<std::string, std::vector<ScanWindow>> scans_;
  std::unordered_map<std::string, CacheEntry> cache_;
  int64_t cache_hits_ = 0;
  int64_t cache_misses_ = 0;
  int64_t cache_invalidations_ = 0;
  int64_t scan_attaches_ = 0;
};

/// The Query Coordinator (Section 2.2): controls the parallel execution of
/// a query as a sequence of *phases*. Within a phase every node works
/// independently; redistribution points and the final result collection
/// are phase barriers.
///
/// Modeled query time = sum over phases of max-over-nodes(phase seconds)
///                    + coordinator-sequential seconds.
/// The explicitly sequential pieces of the paper's queries (the single
/// global aggregate operator of Queries 11/12, Query 3's collector) run
/// via RunSequential and add their full time — which is exactly what caps
/// their speedup in Tables 3.2/3.4.
///
/// Failure protocol: every phase end is a barrier at which scheduled
/// node-crash events fire. The coordinator detects a crash after the retry
/// policy's timeout (charged to its clock), then either restarts the node
/// via WAL recovery (recoverable crash) or marks it dead, invokes the
/// cluster's node-loss handler to redecluster the lost fragments, and
/// finishes the query on the survivors. Each handling step is closed as
/// its own PhaseReport so the degraded run's extra cost is visible.
///
/// Workload mode: when the cluster carries a WorkloadSession and the
/// calling thread is a bound stream, the coordinator skips the cold-start
/// reset (pools are shared and stay warm), takes a scheduling turn before
/// every phase, charges contention for the queries admitted alongside,
/// and arms scan-sharing gates for phases that declare a share key.
class QueryCoordinator {
 public:
  explicit QueryCoordinator(Cluster* cluster);

  /// EndQuery() runs on destruction, so a query abandoned mid-phase (error
  /// or exception unwind) cannot leak its open-phase charges.
  ~QueryCoordinator() { EndQuery(); }

  /// Cold-start protocol: flush+drop buffer pools, zero all clocks. Also
  /// barrier 0 of the fault schedule (a crash "just before the query").
  /// In workload mode the pools and clocks are shared with concurrent
  /// queries, so instead of the global reset only this query's leftover
  /// open-phase usage is discarded.
  Status BeginQuery();

  /// Ends the query's accounting: any usage still sitting in an open
  /// phase (a phase that never reached ClosePhase — failed merge, thrown
  /// exception, early return) is discarded so it cannot be attributed to
  /// the next query on these clocks. Idempotent; called by the destructor.
  void EndQuery();

  /// Per-phase execution options.
  struct PhaseOptions {
    /// Non-empty marks this phase as a shareable scan of the named pages
    /// (e.g. "scan:raster"): in workload mode it may attach to an
    /// in-flight scan with the same key instead of re-paying the
    /// readahead transfers, and it registers its own modeled window for
    /// later queries to attach to. Only mark phases whose readahead on
    /// each node's pool is issued by that node's own closure (the
    /// single-writer contract of storage::ScanShareGate).
    std::string scan_share_key;
  };

  /// Runs `work(node)` for every *alive* node on the cluster's worker
  /// pool, waits at the phase barrier, then closes the phase and adds
  /// max-over-nodes phase time to the query clock. The phase is closed on
  /// every exit path — a failed node, merge, or a thrown exception cannot
  /// leak its usage into the next phase's accounting.
  ///
  /// Concurrency contract for `work`: a node's closure may touch ONLY that
  /// node's state (its clock, buffer pool, stores, fragment, and its own
  /// slot of any shared PerNode vector) plus read-only shared inputs.
  /// Anything cross-node — charging another node's clock, appending to
  /// another node's output, deep-copying data onto another node — belongs
  /// in `merge`, which runs once on the calling thread after the barrier
  /// but before the phase is closed, so its charges still count toward
  /// this phase. This keeps the threaded executor race-free AND makes the
  /// per-node charge sequences independent of the thread count, so
  /// modeled query_seconds() is bit-identical for 1 and N threads.
  Status RunPhase(const std::string& name,
                  const std::function<Status(int node)>& work,
                  const std::function<Status()>& merge = nullptr);
  Status RunPhase(const std::string& name, const PhaseOptions& opts,
                  const std::function<Status(int node)>& work,
                  const std::function<Status()>& merge = nullptr);

  /// Runs sequential (coordinator-side) work; its time adds fully.
  Status RunSequential(const std::string& name,
                       const std::function<Status()>& work);

  /// Modeled elapsed seconds of the query so far.
  double query_seconds() const { return query_seconds_; }

  struct PhaseReport {
    std::string name;
    bool sequential = false;
    double seconds = 0.0;        // contribution to query time
    double max_node_seconds = 0.0;
    double total_node_seconds = 0.0;  // summed over nodes (work volume)
    int contention = 0;               // other queries admitted (workload)
    int64_t scan_shared_windows = 0;  // readahead windows attached to an
                                      // in-flight scan instead of charged
  };
  const std::vector<PhaseReport>& phases() const { return phases_; }

  /// Per-node stats sinks for this query's PBSM joins, reset by
  /// BeginQuery. A node's join phase writes only its own slot (the
  /// RunPhase contract); read them after the query via pbsm_stats().
  exec::PbsmJoinStats* node_pbsm_stats(int node) {
    return &node_pbsm_[static_cast<size_t>(node)];
  }
  /// Aggregate of the per-node sinks (cardinalities summed, partition
  /// maxima maxed) — what a query report should show for "the" join.
  exec::PbsmJoinStats pbsm_stats() const;

  /// Declares that this query mutated `table` (e.g. StoreResult into it):
  /// in workload mode every cached result depending on it is invalidated.
  void NoteTableMutation(const std::string& table);

  Cluster* cluster() { return cluster_; }

  /// The session ticket driving this query's scheduling, or null when the
  /// coordinator runs in single-query mode.
  WorkloadSession::Ticket* ticket() { return ticket_; }

  /// Overrides the retry policy inherited from the cluster at construction
  /// (detection timeouts for this coordinator's queries).
  void set_retry_policy(const sim::RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const sim::RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  /// Folds the open phase into query time on every RunPhase/RunSequential
  /// exit path. Sequential phases add the coordinator clock's time too.
  /// In workload mode the shared resources are scaled by the contention
  /// level sampled at the phase's scheduling turn.
  void ClosePhase(const std::string& name, bool sequential);

  /// Drops any usage sitting in the open phase of every node clock and
  /// the coordinator clock, without folding it anywhere.
  void DiscardOpenPhase();

  /// Fires crash events scheduled for the barrier just passed: crash the
  /// node, charge the detection timeout, then recover it (WAL restart) or
  /// mark it dead and redecluster via the cluster's node-loss handler.
  Status HandleBarrierFaults();

  Cluster* const cluster_;
  sim::RetryPolicy retry_policy_;
  double query_seconds_ = 0.0;
  int barriers_passed_ = 0;
  uint64_t pinned_epoch_ = 0;  // topology epoch this query admitted under
  bool epoch_pinned_ = false;
  std::vector<PhaseReport> phases_;
  std::vector<exec::PbsmJoinStats> node_pbsm_;
  bool ended_ = false;

  // Workload mode (both null in single-query mode).
  WorkloadSession* session_ = nullptr;
  WorkloadSession::Ticket* ticket_ = nullptr;
  int phase_contention_ = 0;          // K sampled at the last phase turn
  int64_t phase_shared_windows_ = 0;  // gate attaches in the open phase
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_COORDINATOR_H_
