#ifndef PARADISE_CORE_COORDINATOR_H_
#define PARADISE_CORE_COORDINATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cluster.h"

namespace paradise::core {

/// The Query Coordinator (Section 2.2): controls the parallel execution of
/// a query as a sequence of *phases*. Within a phase every node works
/// independently; redistribution points and the final result collection
/// are phase barriers.
///
/// Modeled query time = sum over phases of max-over-nodes(phase seconds)
///                    + coordinator-sequential seconds.
/// The explicitly sequential pieces of the paper's queries (the single
/// global aggregate operator of Queries 11/12, Query 3's collector) run
/// via RunSequential and add their full time — which is exactly what caps
/// their speedup in Tables 3.2/3.4.
class QueryCoordinator {
 public:
  explicit QueryCoordinator(Cluster* cluster) : cluster_(cluster) {}

  /// Cold-start protocol: flush+drop buffer pools, zero all clocks.
  void BeginQuery();

  /// Runs `work(node)` for every node on the cluster's worker pool, waits
  /// at the phase barrier, then closes the phase and adds max-over-nodes
  /// phase time to the query clock.
  ///
  /// Concurrency contract for `work`: a node's closure may touch ONLY that
  /// node's state (its clock, buffer pool, stores, fragment, and its own
  /// slot of any shared PerNode vector) plus read-only shared inputs.
  /// Anything cross-node — charging another node's clock, appending to
  /// another node's output, deep-copying data onto another node — belongs
  /// in `merge`, which runs once on the calling thread after the barrier
  /// but before the phase is closed, so its charges still count toward
  /// this phase. This keeps the threaded executor race-free AND makes the
  /// per-node charge sequences independent of the thread count, so
  /// modeled query_seconds() is bit-identical for 1 and N threads.
  Status RunPhase(const std::string& name,
                  const std::function<Status(int node)>& work,
                  const std::function<Status()>& merge = nullptr);

  /// Runs sequential (coordinator-side) work; its time adds fully.
  Status RunSequential(const std::string& name,
                       const std::function<Status()>& work);

  /// Modeled elapsed seconds of the query so far.
  double query_seconds() const { return query_seconds_; }

  struct PhaseReport {
    std::string name;
    bool sequential = false;
    double seconds = 0.0;        // contribution to query time
    double max_node_seconds = 0.0;
    double total_node_seconds = 0.0;  // summed over nodes (work volume)
  };
  const std::vector<PhaseReport>& phases() const { return phases_; }

  Cluster* cluster() { return cluster_; }

 private:
  Cluster* const cluster_;
  double query_seconds_ = 0.0;
  std::vector<PhaseReport> phases_;
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_COORDINATOR_H_
