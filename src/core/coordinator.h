#ifndef PARADISE_CORE_COORDINATOR_H_
#define PARADISE_CORE_COORDINATOR_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/cluster.h"

namespace paradise::core {

/// The Query Coordinator (Section 2.2): controls the parallel execution of
/// a query as a sequence of *phases*. Within a phase every node works
/// independently; redistribution points and the final result collection
/// are phase barriers.
///
/// Modeled query time = sum over phases of max-over-nodes(phase seconds)
///                    + coordinator-sequential seconds.
/// The explicitly sequential pieces of the paper's queries (the single
/// global aggregate operator of Queries 11/12, Query 3's collector) run
/// via RunSequential and add their full time — which is exactly what caps
/// their speedup in Tables 3.2/3.4.
///
/// Failure protocol: every phase end is a barrier at which scheduled
/// node-crash events fire. The coordinator detects a crash after the retry
/// policy's timeout (charged to its clock), then either restarts the node
/// via WAL recovery (recoverable crash) or marks it dead, invokes the
/// cluster's node-loss handler to redecluster the lost fragments, and
/// finishes the query on the survivors. Each handling step is closed as
/// its own PhaseReport so the degraded run's extra cost is visible.
class QueryCoordinator {
 public:
  explicit QueryCoordinator(Cluster* cluster)
      : cluster_(cluster), retry_policy_(cluster->retry_policy()) {}

  /// Cold-start protocol: flush+drop buffer pools, zero all clocks. Also
  /// barrier 0 of the fault schedule (a crash "just before the query").
  Status BeginQuery();

  /// Runs `work(node)` for every *alive* node on the cluster's worker
  /// pool, waits at the phase barrier, then closes the phase and adds
  /// max-over-nodes phase time to the query clock. The phase is closed on
  /// every exit path — a failed node or merge cannot leak its usage into
  /// the next phase's accounting.
  ///
  /// Concurrency contract for `work`: a node's closure may touch ONLY that
  /// node's state (its clock, buffer pool, stores, fragment, and its own
  /// slot of any shared PerNode vector) plus read-only shared inputs.
  /// Anything cross-node — charging another node's clock, appending to
  /// another node's output, deep-copying data onto another node — belongs
  /// in `merge`, which runs once on the calling thread after the barrier
  /// but before the phase is closed, so its charges still count toward
  /// this phase. This keeps the threaded executor race-free AND makes the
  /// per-node charge sequences independent of the thread count, so
  /// modeled query_seconds() is bit-identical for 1 and N threads.
  Status RunPhase(const std::string& name,
                  const std::function<Status(int node)>& work,
                  const std::function<Status()>& merge = nullptr);

  /// Runs sequential (coordinator-side) work; its time adds fully.
  Status RunSequential(const std::string& name,
                       const std::function<Status()>& work);

  /// Modeled elapsed seconds of the query so far.
  double query_seconds() const { return query_seconds_; }

  struct PhaseReport {
    std::string name;
    bool sequential = false;
    double seconds = 0.0;        // contribution to query time
    double max_node_seconds = 0.0;
    double total_node_seconds = 0.0;  // summed over nodes (work volume)
  };
  const std::vector<PhaseReport>& phases() const { return phases_; }

  Cluster* cluster() { return cluster_; }

  /// Overrides the retry policy inherited from the cluster at construction
  /// (detection timeouts for this coordinator's queries).
  void set_retry_policy(const sim::RetryPolicy& policy) {
    retry_policy_ = policy;
  }
  const sim::RetryPolicy& retry_policy() const { return retry_policy_; }

 private:
  /// Folds the open phase into query time on every RunPhase/RunSequential
  /// exit path. Sequential phases add the coordinator clock's time too.
  void ClosePhase(const std::string& name, bool sequential);

  /// Fires crash events scheduled for the barrier just passed: crash the
  /// node, charge the detection timeout, then recover it (WAL restart) or
  /// mark it dead and redecluster via the cluster's node-loss handler.
  Status HandleBarrierFaults();

  Cluster* const cluster_;
  sim::RetryPolicy retry_policy_;
  double query_seconds_ = 0.0;
  int barriers_passed_ = 0;
  std::vector<PhaseReport> phases_;
};

}  // namespace paradise::core

#endif  // PARADISE_CORE_COORDINATOR_H_
