# Empty dependencies file for debug_phases.
# This may be replaced when dependencies are built.
