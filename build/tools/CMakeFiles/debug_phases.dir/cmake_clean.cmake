file(REMOVE_RECURSE
  "CMakeFiles/debug_phases.dir/debug_phases.cc.o"
  "CMakeFiles/debug_phases.dir/debug_phases.cc.o.d"
  "debug_phases"
  "debug_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
