file(REMOVE_RECURSE
  "libparadise_sql.a"
)
