# Empty dependencies file for paradise_sql.
# This may be replaced when dependencies are built.
