file(REMOVE_RECURSE
  "CMakeFiles/paradise_sql.dir/engine.cc.o"
  "CMakeFiles/paradise_sql.dir/engine.cc.o.d"
  "CMakeFiles/paradise_sql.dir/lexer.cc.o"
  "CMakeFiles/paradise_sql.dir/lexer.cc.o.d"
  "libparadise_sql.a"
  "libparadise_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
