# Empty dependencies file for paradise_storage.
# This may be replaced when dependencies are built.
