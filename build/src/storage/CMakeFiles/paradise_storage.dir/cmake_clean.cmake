file(REMOVE_RECURSE
  "CMakeFiles/paradise_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/paradise_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/paradise_storage.dir/disk_volume.cc.o"
  "CMakeFiles/paradise_storage.dir/disk_volume.cc.o.d"
  "CMakeFiles/paradise_storage.dir/heap_file.cc.o"
  "CMakeFiles/paradise_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/paradise_storage.dir/large_object.cc.o"
  "CMakeFiles/paradise_storage.dir/large_object.cc.o.d"
  "CMakeFiles/paradise_storage.dir/lock_manager.cc.o"
  "CMakeFiles/paradise_storage.dir/lock_manager.cc.o.d"
  "CMakeFiles/paradise_storage.dir/recovery.cc.o"
  "CMakeFiles/paradise_storage.dir/recovery.cc.o.d"
  "CMakeFiles/paradise_storage.dir/transaction.cc.o"
  "CMakeFiles/paradise_storage.dir/transaction.cc.o.d"
  "CMakeFiles/paradise_storage.dir/wal.cc.o"
  "CMakeFiles/paradise_storage.dir/wal.cc.o.d"
  "libparadise_storage.a"
  "libparadise_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
