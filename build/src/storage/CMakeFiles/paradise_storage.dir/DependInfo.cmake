
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/paradise_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/disk_volume.cc" "src/storage/CMakeFiles/paradise_storage.dir/disk_volume.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/disk_volume.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/storage/CMakeFiles/paradise_storage.dir/heap_file.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/heap_file.cc.o.d"
  "/root/repo/src/storage/large_object.cc" "src/storage/CMakeFiles/paradise_storage.dir/large_object.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/large_object.cc.o.d"
  "/root/repo/src/storage/lock_manager.cc" "src/storage/CMakeFiles/paradise_storage.dir/lock_manager.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/lock_manager.cc.o.d"
  "/root/repo/src/storage/recovery.cc" "src/storage/CMakeFiles/paradise_storage.dir/recovery.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/recovery.cc.o.d"
  "/root/repo/src/storage/transaction.cc" "src/storage/CMakeFiles/paradise_storage.dir/transaction.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/transaction.cc.o.d"
  "/root/repo/src/storage/wal.cc" "src/storage/CMakeFiles/paradise_storage.dir/wal.cc.o" "gcc" "src/storage/CMakeFiles/paradise_storage.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/paradise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
