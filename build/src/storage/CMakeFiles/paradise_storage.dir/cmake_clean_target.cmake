file(REMOVE_RECURSE
  "libparadise_storage.a"
)
