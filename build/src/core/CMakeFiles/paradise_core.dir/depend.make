# Empty dependencies file for paradise_core.
# This may be replaced when dependencies are built.
