file(REMOVE_RECURSE
  "CMakeFiles/paradise_core.dir/cluster.cc.o"
  "CMakeFiles/paradise_core.dir/cluster.cc.o.d"
  "CMakeFiles/paradise_core.dir/coordinator.cc.o"
  "CMakeFiles/paradise_core.dir/coordinator.cc.o.d"
  "CMakeFiles/paradise_core.dir/parallel_ops.cc.o"
  "CMakeFiles/paradise_core.dir/parallel_ops.cc.o.d"
  "CMakeFiles/paradise_core.dir/pull.cc.o"
  "CMakeFiles/paradise_core.dir/pull.cc.o.d"
  "CMakeFiles/paradise_core.dir/query_builder.cc.o"
  "CMakeFiles/paradise_core.dir/query_builder.cc.o.d"
  "CMakeFiles/paradise_core.dir/table.cc.o"
  "CMakeFiles/paradise_core.dir/table.cc.o.d"
  "libparadise_core.a"
  "libparadise_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
