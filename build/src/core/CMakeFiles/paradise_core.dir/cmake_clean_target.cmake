file(REMOVE_RECURSE
  "libparadise_core.a"
)
