file(REMOVE_RECURSE
  "libparadise_codec.a"
)
