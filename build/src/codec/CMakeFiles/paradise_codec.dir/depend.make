# Empty dependencies file for paradise_codec.
# This may be replaced when dependencies are built.
