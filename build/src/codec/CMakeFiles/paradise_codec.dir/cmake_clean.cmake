file(REMOVE_RECURSE
  "CMakeFiles/paradise_codec.dir/lzw.cc.o"
  "CMakeFiles/paradise_codec.dir/lzw.cc.o.d"
  "libparadise_codec.a"
  "libparadise_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
