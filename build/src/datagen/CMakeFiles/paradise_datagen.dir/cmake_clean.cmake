file(REMOVE_RECURSE
  "CMakeFiles/paradise_datagen.dir/datagen.cc.o"
  "CMakeFiles/paradise_datagen.dir/datagen.cc.o.d"
  "libparadise_datagen.a"
  "libparadise_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
