# Empty dependencies file for paradise_datagen.
# This may be replaced when dependencies are built.
