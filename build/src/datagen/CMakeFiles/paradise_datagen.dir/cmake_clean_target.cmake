file(REMOVE_RECURSE
  "libparadise_datagen.a"
)
