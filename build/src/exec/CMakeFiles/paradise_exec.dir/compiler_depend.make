# Empty compiler generated dependencies file for paradise_exec.
# This may be replaced when dependencies are built.
