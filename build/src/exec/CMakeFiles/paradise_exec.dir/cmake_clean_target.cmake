file(REMOVE_RECURSE
  "libparadise_exec.a"
)
