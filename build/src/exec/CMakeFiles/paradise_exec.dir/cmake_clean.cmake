file(REMOVE_RECURSE
  "CMakeFiles/paradise_exec.dir/aggregate.cc.o"
  "CMakeFiles/paradise_exec.dir/aggregate.cc.o.d"
  "CMakeFiles/paradise_exec.dir/expr.cc.o"
  "CMakeFiles/paradise_exec.dir/expr.cc.o.d"
  "CMakeFiles/paradise_exec.dir/operators.cc.o"
  "CMakeFiles/paradise_exec.dir/operators.cc.o.d"
  "CMakeFiles/paradise_exec.dir/spatial_join.cc.o"
  "CMakeFiles/paradise_exec.dir/spatial_join.cc.o.d"
  "CMakeFiles/paradise_exec.dir/value.cc.o"
  "CMakeFiles/paradise_exec.dir/value.cc.o.d"
  "libparadise_exec.a"
  "libparadise_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
