# Empty compiler generated dependencies file for paradise_common.
# This may be replaced when dependencies are built.
