file(REMOVE_RECURSE
  "CMakeFiles/paradise_common.dir/date.cc.o"
  "CMakeFiles/paradise_common.dir/date.cc.o.d"
  "CMakeFiles/paradise_common.dir/status.cc.o"
  "CMakeFiles/paradise_common.dir/status.cc.o.d"
  "libparadise_common.a"
  "libparadise_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
