file(REMOVE_RECURSE
  "libparadise_common.a"
)
