file(REMOVE_RECURSE
  "CMakeFiles/paradise_benchmark.dir/database.cc.o"
  "CMakeFiles/paradise_benchmark.dir/database.cc.o.d"
  "CMakeFiles/paradise_benchmark.dir/queries.cc.o"
  "CMakeFiles/paradise_benchmark.dir/queries.cc.o.d"
  "libparadise_benchmark.a"
  "libparadise_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
