file(REMOVE_RECURSE
  "libparadise_benchmark.a"
)
