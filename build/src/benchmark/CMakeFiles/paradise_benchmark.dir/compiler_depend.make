# Empty compiler generated dependencies file for paradise_benchmark.
# This may be replaced when dependencies are built.
