# Empty compiler generated dependencies file for paradise_array.
# This may be replaced when dependencies are built.
