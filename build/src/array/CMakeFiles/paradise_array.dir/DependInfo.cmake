
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/chunked_array.cc" "src/array/CMakeFiles/paradise_array.dir/chunked_array.cc.o" "gcc" "src/array/CMakeFiles/paradise_array.dir/chunked_array.cc.o.d"
  "/root/repo/src/array/raster.cc" "src/array/CMakeFiles/paradise_array.dir/raster.cc.o" "gcc" "src/array/CMakeFiles/paradise_array.dir/raster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/paradise_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/paradise_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/paradise_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/paradise_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
