file(REMOVE_RECURSE
  "libparadise_array.a"
)
