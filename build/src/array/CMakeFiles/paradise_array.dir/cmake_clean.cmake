file(REMOVE_RECURSE
  "CMakeFiles/paradise_array.dir/chunked_array.cc.o"
  "CMakeFiles/paradise_array.dir/chunked_array.cc.o.d"
  "CMakeFiles/paradise_array.dir/raster.cc.o"
  "CMakeFiles/paradise_array.dir/raster.cc.o.d"
  "libparadise_array.a"
  "libparadise_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
