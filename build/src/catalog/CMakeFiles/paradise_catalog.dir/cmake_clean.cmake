file(REMOVE_RECURSE
  "CMakeFiles/paradise_catalog.dir/aggregate_registry.cc.o"
  "CMakeFiles/paradise_catalog.dir/aggregate_registry.cc.o.d"
  "CMakeFiles/paradise_catalog.dir/catalog.cc.o"
  "CMakeFiles/paradise_catalog.dir/catalog.cc.o.d"
  "libparadise_catalog.a"
  "libparadise_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
