# Empty compiler generated dependencies file for paradise_catalog.
# This may be replaced when dependencies are built.
