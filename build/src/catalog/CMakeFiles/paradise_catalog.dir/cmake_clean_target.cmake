file(REMOVE_RECURSE
  "libparadise_catalog.a"
)
