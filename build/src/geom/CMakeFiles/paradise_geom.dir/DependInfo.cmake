
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/algorithms.cc" "src/geom/CMakeFiles/paradise_geom.dir/algorithms.cc.o" "gcc" "src/geom/CMakeFiles/paradise_geom.dir/algorithms.cc.o.d"
  "/root/repo/src/geom/geom_strings.cc" "src/geom/CMakeFiles/paradise_geom.dir/geom_strings.cc.o" "gcc" "src/geom/CMakeFiles/paradise_geom.dir/geom_strings.cc.o.d"
  "/root/repo/src/geom/polygon.cc" "src/geom/CMakeFiles/paradise_geom.dir/polygon.cc.o" "gcc" "src/geom/CMakeFiles/paradise_geom.dir/polygon.cc.o.d"
  "/root/repo/src/geom/polyline.cc" "src/geom/CMakeFiles/paradise_geom.dir/polyline.cc.o" "gcc" "src/geom/CMakeFiles/paradise_geom.dir/polyline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/paradise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
