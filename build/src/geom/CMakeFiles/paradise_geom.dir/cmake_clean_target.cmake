file(REMOVE_RECURSE
  "libparadise_geom.a"
)
