file(REMOVE_RECURSE
  "CMakeFiles/paradise_geom.dir/algorithms.cc.o"
  "CMakeFiles/paradise_geom.dir/algorithms.cc.o.d"
  "CMakeFiles/paradise_geom.dir/geom_strings.cc.o"
  "CMakeFiles/paradise_geom.dir/geom_strings.cc.o.d"
  "CMakeFiles/paradise_geom.dir/polygon.cc.o"
  "CMakeFiles/paradise_geom.dir/polygon.cc.o.d"
  "CMakeFiles/paradise_geom.dir/polyline.cc.o"
  "CMakeFiles/paradise_geom.dir/polyline.cc.o.d"
  "libparadise_geom.a"
  "libparadise_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
