# Empty dependencies file for paradise_geom.
# This may be replaced when dependencies are built.
