file(REMOVE_RECURSE
  "CMakeFiles/paradise_index.dir/r_star_tree.cc.o"
  "CMakeFiles/paradise_index.dir/r_star_tree.cc.o.d"
  "libparadise_index.a"
  "libparadise_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradise_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
