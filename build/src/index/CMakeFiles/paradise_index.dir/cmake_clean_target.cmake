file(REMOVE_RECURSE
  "libparadise_index.a"
)
