# Empty compiler generated dependencies file for paradise_index.
# This may be replaced when dependencies are built.
