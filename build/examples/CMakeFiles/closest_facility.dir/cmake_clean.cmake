file(REMOVE_RECURSE
  "CMakeFiles/closest_facility.dir/closest_facility.cpp.o"
  "CMakeFiles/closest_facility.dir/closest_facility.cpp.o.d"
  "closest_facility"
  "closest_facility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closest_facility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
