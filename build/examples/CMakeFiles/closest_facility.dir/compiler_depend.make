# Empty compiler generated dependencies file for closest_facility.
# This may be replaced when dependencies are built.
