file(REMOVE_RECURSE
  "CMakeFiles/satellite_archive.dir/satellite_archive.cpp.o"
  "CMakeFiles/satellite_archive.dir/satellite_archive.cpp.o.d"
  "satellite_archive"
  "satellite_archive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/satellite_archive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
