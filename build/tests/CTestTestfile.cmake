# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/lock_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/array_test[1]_include.cmake")
include("/root/repo/build/tests/raster_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/aggregate_test[1]_include.cmake")
include("/root/repo/build/tests/spatial_join_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/query_builder_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/benchmark_test[1]_include.cmake")
