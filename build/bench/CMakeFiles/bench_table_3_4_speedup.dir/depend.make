# Empty dependencies file for bench_table_3_4_speedup.
# This may be replaced when dependencies are built.
