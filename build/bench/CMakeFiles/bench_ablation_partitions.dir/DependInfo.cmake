
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_partitions.cc" "bench/CMakeFiles/bench_ablation_partitions.dir/bench_ablation_partitions.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_partitions.dir/bench_ablation_partitions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchmark/CMakeFiles/paradise_benchmark.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/paradise_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/paradise_core.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/paradise_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/paradise_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/paradise_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/paradise_index.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/paradise_array.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/paradise_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/codec/CMakeFiles/paradise_codec.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/paradise_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paradise_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
