file(REMOVE_RECURSE
  "CMakeFiles/bench_table_3_2_scaleup.dir/bench_table_3_2_scaleup.cc.o"
  "CMakeFiles/bench_table_3_2_scaleup.dir/bench_table_3_2_scaleup.cc.o.d"
  "bench_table_3_2_scaleup"
  "bench_table_3_2_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_3_2_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
