# Empty dependencies file for bench_table_3_2_scaleup.
# This may be replaced when dependencies are built.
