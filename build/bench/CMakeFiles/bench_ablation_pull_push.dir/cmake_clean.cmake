file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pull_push.dir/bench_ablation_pull_push.cc.o"
  "CMakeFiles/bench_ablation_pull_push.dir/bench_ablation_pull_push.cc.o.d"
  "bench_ablation_pull_push"
  "bench_ablation_pull_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pull_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
