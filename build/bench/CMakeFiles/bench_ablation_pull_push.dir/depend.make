# Empty dependencies file for bench_ablation_pull_push.
# This may be replaced when dependencies are built.
