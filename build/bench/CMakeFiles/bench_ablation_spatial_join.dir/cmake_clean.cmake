file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_spatial_join.dir/bench_ablation_spatial_join.cc.o"
  "CMakeFiles/bench_ablation_spatial_join.dir/bench_ablation_spatial_join.cc.o.d"
  "bench_ablation_spatial_join"
  "bench_ablation_spatial_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spatial_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
