# Empty dependencies file for bench_table_3_5_decluster.
# This may be replaced when dependencies are built.
