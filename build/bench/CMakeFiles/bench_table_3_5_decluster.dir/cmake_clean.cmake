file(REMOVE_RECURSE
  "CMakeFiles/bench_table_3_5_decluster.dir/bench_table_3_5_decluster.cc.o"
  "CMakeFiles/bench_table_3_5_decluster.dir/bench_table_3_5_decluster.cc.o.d"
  "bench_table_3_5_decluster"
  "bench_table_3_5_decluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_3_5_decluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
